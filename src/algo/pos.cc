#include "algo/pos.h"

#include <algorithm>
#include <optional>

#include "util/check.h"
#include "util/trace.h"

namespace wsnq {

PosProtocol::PosProtocol(int64_t k, int64_t range_min, int64_t range_max,
                         const WireFormat& wire, const Options& options)
    : k_(k),
      range_min_(range_min),
      range_max_(range_max),
      wire_(wire),
      options_(options) {
  WSNQ_CHECK_GE(k, 1);
  WSNQ_CHECK_LE(range_min, range_max);
}

void PosProtocol::Initialize(Network* net,
                             const std::vector<int64_t>& values) {
  // Query dissemination (k) followed by a TAG collection (§3.2: "POS
  // computes the first quantile by using an aggregation technique
  // equivalent to TAG").
  net->FloodFromRoot(wire_.counter_bits);
  const std::vector<int64_t> collected =
      CollectKSmallest(net, values, k_, wire_, &ws_);
  if (!net->lossy()) {
    WSNQ_CHECK_GE(static_cast<int64_t>(collected.size()), k_);
  }
  quantile_ = BestEffortKth(collected, k_, (range_min_ + range_max_) / 2);
  counts_ = CountsFromCollection(collected, quantile_, net->num_sensors());
  // Filter broadcast.
  net->FloodFromRoot(wire_.value_bits);
  filter_ = quantile_;
}

void PosProtocol::RunRound(Network* net,
                           const std::vector<int64_t>& values_by_vertex,
                           int64_t round) {
  refinements_ = 0;
  // Round 0, or the routing tree changed under us (fault-driven repair):
  // rebuild the root state rather than miscount over a stale topology.
  if (round == 0 || tree_epoch_ != net->tree_epoch()) {
    tree_epoch_ = net->tree_epoch();
    Initialize(net, values_by_vertex);
    prev_values_ = values_by_vertex;
    return;
  }
  WSNQ_CHECK_EQ(prev_values_.size(), values_by_vertex.size());

  // Validation convergecast: a node reports iff its value's region relative
  // to the (unchanged) filter differs from last round's.
  const int64_t filter = filter_;
  const std::vector<int64_t>& prev = prev_values_;
  const ValidationAgg validation = TransitionConvergecast(
      net, values_by_vertex, wire_, options_.use_hints ? 2 : 0,
      [&](int v) {
        const size_t i = static_cast<size_t>(v);
        return std::pair(ClassifyThreshold(prev[i], filter),
                         ClassifyThreshold(values_by_vertex[i], filter));
      },
      &ws_);
  ApplyCounters(validation, net->num_sensors(), &counts_);
  if (!net->lossy()) {
    WSNQ_DCHECK(CountsConserved(counts_, net->num_sensors()));
  }

  if (CountsValid(counts_, k_)) {
    quantile_ = filter_;  // Still certified; nothing to transmit.
  } else {
    Refine(net, values_by_vertex, validation);
  }
  prev_values_ = values_by_vertex;
}

void PosProtocol::Refine(Network* net, const std::vector<int64_t>& values,
                         const ValidationAgg& validation) {
  const int64_t n = net->num_sensors();
  // Search bounds [lo, hi] that contain the k-th value, and — when known —
  // the exact population below lo / above hi (for the direct-send test).
  int64_t lo, hi;
  std::optional<int64_t> below_lo, above_hi;
  if (counts_.l >= k_) {  // Quantile moved down.
    hi = filter_ - 1;
    above_hi = n - counts_.l;  // everything >= filter_
    if (options_.use_hints && validation.has_hint) {
      lo = std::max(range_min_, validation.min_changed);
    } else {
      lo = range_min_;
    }
    if (lo == range_min_) below_lo = 0;
  } else {  // counts_.l + counts_.e < k_: quantile moved up.
    lo = filter_ + 1;
    below_lo = counts_.l + counts_.e;  // everything <= filter_
    if (options_.use_hints && validation.has_hint) {
      hi = std::min(range_max_, validation.max_changed);
    } else {
      hi = range_max_;
    }
    if (hi == range_max_) above_hi = 0;
  }
  // Hint traffic (§3.2 / §5.1.6): (min, max) of state-changing values rode
  // the validation convergecast; record how far they narrowed the search.
  WSNQ_TRACE_EVENT("refinement", "search_bounds", -1, {"lo", lo}, {"hi", hi},
                   {"hinted", options_.use_hints && validation.has_hint});

  // The threshold all nodes currently hold; counts_ is relative to it.
  int64_t current = filter_;
  const int64_t capacity = net->packetizer().ValuesPerPacket(wire_.value_bits);

  while (true) {
    if (lo > hi) {
      // Only reachable when message loss corrupted the counts: accept the
      // threshold all nodes currently hold and let the rank error show.
      WSNQ_CHECK(net->lossy());
      quantile_ = current;
      filter_ = current;
      return;
    }
    if (options_.direct_send && below_lo.has_value() &&
        above_hi.has_value() && n - *below_lo - *above_hi <= capacity) {
      DirectRetrieve(net, values, lo, hi, *below_lo);
      return;
    }

    const int64_t mid = lo + (hi - lo) / 2;
    // Binary-search bracket: the midpoint stays inside [lo, hi] and the
    // bracket stays inside the value universe.
    WSNQ_DCHECK_GE(mid, lo);
    WSNQ_DCHECK_LE(mid, hi);
    WSNQ_DCHECK_GE(lo, range_min_);
    WSNQ_DCHECK_LE(hi, range_max_);
    // Broadcast the midpoint; every node adopts it as the tentative new
    // quantile and reports its region movement relative to `current`.
    WSNQ_TRACE_EVENT("refinement", "probe", -1, {"mid", mid}, {"lo", lo},
                     {"hi", hi});
    net->FloodFromRoot(wire_.value_bits);
    const ValidationAgg agg = TransitionConvergecast(
        net, values, wire_, 0, [&](int v) {
          const int64_t value = values[static_cast<size_t>(v)];
          return std::pair(ClassifyThreshold(value, current),
                           ClassifyThreshold(value, mid));
        },
        &ws_);
    ApplyCounters(agg, n, &counts_);
    ++refinements_;
    current = mid;

    if (CountsValid(counts_, k_)) {
      // mid is certified as the exact quantile; every node already knows it
      // (§3.2: no final broadcast needed).
      quantile_ = mid;
      filter_ = mid;
      return;
    }
    if (counts_.l >= k_) {
      hi = mid - 1;
      above_hi = n - counts_.l;
    } else {
      lo = mid + 1;
      below_lo = counts_.l + counts_.e;
    }
  }
}

void PosProtocol::DirectRetrieve(Network* net,
                                 const std::vector<int64_t>& values,
                                 int64_t lo, int64_t hi, int64_t below_lo) {
  // Request broadcast with the interval bounds.
  WSNQ_TRACE_EVENT("refinement", "direct_retrieve", -1, {"lo", lo},
                   {"hi", hi});
  net->FloodFromRoot(2 * wire_.bound_bits);
  const std::vector<int64_t> collected =
      RangeValuesConvergecast(net, values, lo, hi, wire_, &ws_);
  ++refinements_;
  const int64_t rank_in_interval = k_ - below_lo;  // 1-based
  if (!net->lossy()) {
    WSNQ_CHECK_GE(rank_in_interval, 1);
    WSNQ_CHECK_LE(rank_in_interval,
                  static_cast<int64_t>(collected.size()));
  }
  quantile_ = BestEffortKth(collected, rank_in_interval, filter_);
  counts_.l = below_lo;
  counts_.e = 0;
  for (int64_t v : collected) {
    if (v < quantile_) ++counts_.l;
    if (v == quantile_) ++counts_.e;
  }
  counts_.g = net->num_sensors() - counts_.l - counts_.e;
  // Direct sends leave the nodes without the new threshold: final filter
  // broadcast (§3.2).
  net->FloodFromRoot(wire_.value_bits);
  filter_ = quantile_;
}

}  // namespace wsnq
