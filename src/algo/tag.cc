#include "algo/tag.h"

#include "util/check.h"
#include "util/trace.h"

namespace wsnq {

void TagProtocol::RunRound(Network* net,
                           const std::vector<int64_t>& values_by_vertex,
                           int64_t round) {
  if (round == 0) {
    // Query dissemination: broadcast k into the tree once.
    net->FloodFromRoot(wire_.counter_bits);
  }
  WSNQ_TRACE_SCOPE("validation", "collect_k_smallest", -1, {"k", k_});
  const std::vector<int64_t> collected =
      CollectKSmallest(net, values_by_vertex, k_, wire_, &ws_);
  if (!net->lossy()) {
    WSNQ_CHECK_GE(static_cast<int64_t>(collected.size()), k_);
  }
  quantile_ = BestEffortKth(collected, k_, quantile_);
  counts_ = CountsFromCollection(collected, quantile_, net->num_sensors());
  if (!net->lossy()) {
    // A complete TAG collection certifies the exact rank: the reported
    // quantile was observed (e >= 1) and its rank brackets k.
    WSNQ_DCHECK(CountsConserved(counts_, net->num_sensors()));
    WSNQ_DCHECK_GE(counts_.e, 1);
    WSNQ_DCHECK(CountsValid(counts_, k_));
  }
}

}  // namespace wsnq
