// Centralized ground truth: exact order statistics over a snapshot. Used by
// the test suite to verify every protocol's answer and bookkeeping, and by
// protocols' internal assertions in debug builds. Performs no communication.

#ifndef WSNQ_ALGO_ORACLE_H_
#define WSNQ_ALGO_ORACLE_H_

#include <cstdint>
#include <vector>

#include "algo/protocol.h"
#include "net/network.h"

namespace wsnq {

/// Exact k-th smallest (1-based rank) of `sensor_values`.
/// Precondition: 1 <= k <= sensor_values.size().
int64_t OracleKth(const std::vector<int64_t>& sensor_values, int64_t k);

/// Exact (l, e, g) of `threshold` over `sensor_values`.
RootCounts OracleCounts(const std::vector<int64_t>& sensor_values,
                        int64_t threshold);

/// Rank error of reporting `reported` as the k-th smallest of
/// `sensor_values`: 0 when some occurrence of `reported` has rank k, else
/// the distance from k to the nearest rank `reported` could take (§6's
/// rank-error notion for lossy links).
int64_t OracleRankError(const std::vector<int64_t>& sensor_values,
                        int64_t reported, int64_t k);

/// OracleKth over an ascending-sorted snapshot: O(1) instead of a copy
/// plus selection. Values are integers, so sorted[k-1] is exactly the
/// value nth_element selects.
int64_t OracleKthSorted(const std::vector<int64_t>& sorted_sensor_values,
                        int64_t k);

/// OracleRankError over an ascending-sorted snapshot: two binary searches
/// give the same (l, e) counts a linear scan would.
int64_t OracleRankErrorSorted(
    const std::vector<int64_t>& sorted_sensor_values, int64_t reported,
    int64_t k);

/// Extracts the sensor measurements (every vertex except the root) from a
/// per-vertex value vector.
std::vector<int64_t> SensorValues(const Network& net,
                                  const std::vector<int64_t>& values_by_vertex);

}  // namespace wsnq

#endif  // WSNQ_ALGO_ORACLE_H_
