#include "algo/registry.h"

#include <cstring>

#include "algo/approximate.h"
#include "algo/hbc.h"
#include "algo/iq.h"
#include "algo/lcll.h"
#include "algo/pos.h"
#include "algo/pos_sr.h"
#include "algo/snapshot_bary.h"
#include "algo/switching.h"
#include "algo/tag.h"

namespace wsnq {

const char* AlgorithmName(AlgorithmKind kind) {
  switch (kind) {
    case AlgorithmKind::kTag:
      return "TAG";
    case AlgorithmKind::kPos:
      return "POS";
    case AlgorithmKind::kPosSr:
      return "POS-SR";
    case AlgorithmKind::kHbc:
      return "HBC";
    case AlgorithmKind::kHbcNtb:
      return "HBC-NTB";
    case AlgorithmKind::kIq:
      return "IQ";
    case AlgorithmKind::kLcllH:
      return "LCLL-H";
    case AlgorithmKind::kLcllS:
      return "LCLL-S";
    case AlgorithmKind::kSnapshot:
      return "SNAPSHOT";
    case AlgorithmKind::kSwitching:
      return "SWITCH";
    case AlgorithmKind::kQdigest:
      return "QDIGEST";
    case AlgorithmKind::kGk:
      return "GK";
    case AlgorithmKind::kSampling:
      return "SAMPLE";
  }
  return "UNKNOWN";
}

StatusOr<AlgorithmKind> ParseAlgorithmName(const char* name) {
  static constexpr AlgorithmKind kAll[] = {
      AlgorithmKind::kTag,    AlgorithmKind::kPos,
      AlgorithmKind::kPosSr,  AlgorithmKind::kHbc,    AlgorithmKind::kHbcNtb,
      AlgorithmKind::kIq,     AlgorithmKind::kLcllH,
      AlgorithmKind::kLcllS,  AlgorithmKind::kSnapshot,
      AlgorithmKind::kSwitching, AlgorithmKind::kQdigest,
      AlgorithmKind::kGk,     AlgorithmKind::kSampling,
  };
  for (AlgorithmKind kind : kAll) {
    if (std::strcmp(name, AlgorithmName(kind)) == 0) return kind;
  }
  return Status::NotFound(std::string("unknown algorithm: ") + name);
}

std::vector<AlgorithmKind> PaperAlgorithms() {
  return {AlgorithmKind::kTag,   AlgorithmKind::kPos,
          AlgorithmKind::kHbc,   AlgorithmKind::kIq,
          AlgorithmKind::kLcllH, AlgorithmKind::kLcllS};
}

std::unique_ptr<QuantileProtocol> MakeProtocol(AlgorithmKind kind, int64_t k,
                                               int64_t range_min,
                                               int64_t range_max,
                                               const WireFormat& wire) {
  switch (kind) {
    case AlgorithmKind::kTag:
      return std::make_unique<TagProtocol>(k, wire);
    case AlgorithmKind::kPos:
      return std::make_unique<PosProtocol>(k, range_min, range_max, wire,
                                           PosProtocol::Options{});
    case AlgorithmKind::kPosSr:
      return std::make_unique<PosSrProtocol>(k, range_min, range_max, wire,
                                             PosSrProtocol::Options{});
    case AlgorithmKind::kHbc:
      return std::make_unique<HbcProtocol>(k, range_min, range_max, wire,
                                           HbcProtocol::Options{});
    case AlgorithmKind::kHbcNtb: {
      HbcProtocol::Options options;
      options.eliminate_threshold_broadcast = true;
      return std::make_unique<HbcProtocol>(k, range_min, range_max, wire,
                                           options);
    }
    case AlgorithmKind::kIq:
      return std::make_unique<IqProtocol>(k, range_min, range_max, wire,
                                          IqProtocol::Options{});
    case AlgorithmKind::kLcllH: {
      LcllProtocol::Options options;
      options.mode = LcllProtocol::RefineMode::kHierarchical;
      return std::make_unique<LcllProtocol>(k, range_min, range_max, wire,
                                            options);
    }
    case AlgorithmKind::kLcllS: {
      LcllProtocol::Options options;
      options.mode = LcllProtocol::RefineMode::kSlip;
      return std::make_unique<LcllProtocol>(k, range_min, range_max, wire,
                                            options);
    }
    case AlgorithmKind::kSnapshot: {
      DrillOptions options;
      options.buckets = 8;
      options.direct_capacity = 64;
      return std::make_unique<SnapshotBaryProtocol>(k, range_min, range_max,
                                                    wire, options);
    }
    case AlgorithmKind::kSwitching:
      return std::make_unique<SwitchingProtocol>(k, range_min, range_max,
                                                 wire,
                                                 SwitchingProtocol::Options{});
    case AlgorithmKind::kQdigest:
      return std::make_unique<QdigestProtocol>(k, range_min, range_max, wire,
                                               QdigestProtocol::Options{});
    case AlgorithmKind::kGk:
      return std::make_unique<GkProtocol>(k, range_min, range_max, wire,
                                          GkProtocol::Options{});
    case AlgorithmKind::kSampling:
      return std::make_unique<SamplingProtocol>(k, range_min, range_max,
                                                wire,
                                                SamplingProtocol::Options{});
  }
  return nullptr;
}

}  // namespace wsnq
