#include "algo/switching.h"

#include <cmath>
#include <cstdlib>

#include "util/check.h"
#include "util/trace.h"

namespace wsnq {

SwitchingProtocol::SwitchingProtocol(int64_t k, int64_t range_min,
                                     int64_t range_max,
                                     const WireFormat& wire,
                                     const Options& options)
    : k_(k),
      range_min_(range_min),
      range_max_(range_max),
      wire_(wire),
      options_(options) {
  options_.hbc.eliminate_threshold_broadcast = false;  // state must transfer
  iq_ = std::make_unique<IqProtocol>(k, range_min, range_max, wire,
                                     options_.iq);
  hbc_ = std::make_unique<HbcProtocol>(k, range_min, range_max, wire,
                                       options_.hbc);
  active_ = iq_.get();
}

void SwitchingProtocol::RunRound(Network* net,
                                 const std::vector<int64_t>& values_by_vertex,
                                 int64_t round) {
  if (round == 0) {
    active_->RunRound(net, values_by_vertex, 0);
    prev_quantile_ = active_->quantile();
    prev_values_ = values_by_vertex;
    return;
  }
  active_->RunRound(net, values_by_vertex, round);
  deltas_.push_back(std::llabs(active_->quantile() - prev_quantile_));
  while (static_cast<int>(deltas_.size()) > options_.window) {
    deltas_.pop_front();
  }
  prev_quantile_ = active_->quantile();
  prev_values_ = values_by_vertex;
  if (round % options_.evaluate_every == 0) {
    MaybeSwitch(net);
  }
}

void SwitchingProtocol::MaybeSwitch(Network* net) {
  if (deltas_.empty()) return;
  double mean_abs = 0.0;
  for (int64_t d : deltas_) mean_abs += static_cast<double>(d);
  mean_abs /= static_cast<double>(deltas_.size());

  // Scale: the slice of the universe one HBC drill level pins down.
  const int buckets = hbc_->buckets() > 0 ? hbc_->buckets() : 12;
  const double tau = static_cast<double>(range_max_ - range_min_ + 1);
  const double unit = tau / (static_cast<double>(buckets) *
                             static_cast<double>(buckets));

  const bool want_hbc =
      iq_active() ? mean_abs > options_.up_factor * unit
                  : mean_abs > options_.down_factor * unit;
  if (want_hbc == !iq_active()) return;  // no change

  // Mode announcement: mode tag plus the filter (and IQ window bounds).
  WSNQ_TRACE_EVENT("validation", "mode_switch", -1,
                   {"to_hbc", want_hbc ? 1 : 0},
                   {"mean_abs_delta_x1000",
                    static_cast<int64_t>(mean_abs * 1000.0)});
  net->FloodFromRoot(8 + 2 * wire_.value_bits);
  ++switches_;
  const int64_t filter = active_->quantile();
  const RootCounts counts = active_->root_counts();
  if (want_hbc) {
    hbc_->AdoptState(filter, counts, prev_values_);
    active_ = hbc_.get();
  } else {
    std::deque<int64_t> signed_deltas;
    // The magnitude history is what the policy kept; seed IQ's window
    // symmetrically so it reopens on both sides.
    for (int64_t d : deltas_) {
      signed_deltas.push_back(d);
      signed_deltas.push_back(-d);
    }
    iq_->AdoptState(filter, counts, prev_values_, signed_deltas);
    active_ = iq_.get();
  }
}

}  // namespace wsnq
