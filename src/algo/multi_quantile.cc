#include "algo/multi_quantile.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace wsnq {

MultiIqProtocol::MultiIqProtocol(std::vector<int64_t> ks, int64_t range_min,
                                 int64_t range_max, const WireFormat& wire,
                                 const Options& options)
    : ks_(std::move(ks)),
      range_min_(range_min),
      range_max_(range_max),
      wire_(wire),
      options_(options) {
  WSNQ_CHECK(!ks_.empty());
  for (size_t i = 0; i < ks_.size(); ++i) {
    WSNQ_CHECK_GE(ks_[i], 1);
    if (i > 0) WSNQ_CHECK_LT(ks_[i - 1], ks_[i]);
  }
  states_.resize(ks_.size());
  for (size_t i = 0; i < ks_.size(); ++i) states_[i].k = ks_[i];
}

void MultiIqProtocol::Initialize(Network* net,
                                 const std::vector<int64_t>& values) {
  // One k-limited collection up to the largest tracked rank initializes
  // every rank at once.
  net->FloodFromRoot(wire_.counter_bits);
  const std::vector<int64_t> collected =
      CollectKSmallest(net, values, ks_.back(), wire_, &ws_);
  WSNQ_CHECK_GE(static_cast<int64_t>(collected.size()), ks_.back());
  for (RankState& state : states_) {
    state.filter = collected[static_cast<size_t>(state.k - 1)];
    state.counts =
        CountsFromCollection(collected, state.filter, net->num_sensors());
    int64_t xi = 1;
    if (state.k >= 2) {
      const double spread = static_cast<double>(
          collected[static_cast<size_t>(state.k - 1)] - collected[0]);
      xi = std::max<int64_t>(
          1, static_cast<int64_t>(std::llround(
                 options_.init_c * spread / static_cast<double>(state.k))));
    }
    state.xi_l = -xi;
    state.xi_r = xi;
  }
  // Filter broadcast: (v_k, xi) tuple per rank.
  net->FloodFromRoot(static_cast<int64_t>(ks_.size()) * 2 *
                     wire_.value_bits);
}

void MultiIqProtocol::RunRound(Network* net,
                               const std::vector<int64_t>& values_by_vertex,
                               int64_t round) {
  refinements_ = 0;
  // Round 0, or the routing tree changed under us (fault-driven repair):
  // rebuild the root state rather than miscount over a stale topology.
  if (round == 0 || tree_epoch_ != net->tree_epoch()) {
    tree_epoch_ = net->tree_epoch();
    Initialize(net, values_by_vertex);
    prev_values_ = values_by_vertex;
    return;
  }
  WSNQ_CHECK_EQ(prev_values_.size(), values_by_vertex.size());

  // --- Shared validation convergecast ------------------------------------
  // aggs[v * m + j] / windows[v * m + j]: rank j's aggregate and window
  // multiset of v's subtree, as flat workspace rows. The windows family is
  // independent of the collection rows, so the per-rank refinements issued
  // below can run while the root windows are still being consumed.
  const size_t m = ks_.size();
  const size_t vertices = static_cast<size_t>(net->num_vertices());
  std::vector<ValidationAgg>& aggs = ws_.PrepareAggRows(vertices, m);
  std::vector<std::vector<int64_t>>& windows =
      ws_.PrepareWindows(vertices * m);
  struct Ops {
    MultiIqProtocol* self;
    Network* net;
    const std::vector<int64_t>& values;
    std::vector<ValidationAgg>& aggs;
    std::vector<std::vector<int64_t>>& windows;
    size_t m;

    WaveSend Process(int v, WaveLane& /*lane*/) {
      const size_t base = static_cast<size_t>(v) * m;
      if (!net->is_root(v)) {
        const size_t i = static_cast<size_t>(v);
        for (size_t j = 0; j < m; ++j) {
          const RankState& state = self->states_[j];
          aggs[base + j].AddTransition(
              ClassifyThreshold(self->prev_values_[i], state.filter),
              ClassifyThreshold(values[i], state.filter), values[i]);
          if (values[i] >= state.filter + state.xi_l &&
              values[i] <= state.filter + state.xi_r &&
              values[i] != state.filter) {
            windows[base + j].push_back(values[i]);
          }
        }
      }
      for (int child : net->tree().children[static_cast<size_t>(v)]) {
        const size_t child_base = static_cast<size_t>(child) * m;
        for (size_t j = 0; j < m; ++j) {
          aggs[base + j].Merge(aggs[child_base + j]);
          std::vector<int64_t>& theirs = windows[child_base + j];
          if (theirs.empty()) continue;
          std::vector<int64_t>& mine = windows[base + j];
          if (mine.empty()) {
            mine.swap(theirs);
          } else {
            mine.insert(mine.end(), theirs.begin(), theirs.end());
            theirs.clear();
          }
        }
      }
      int64_t payload = static_cast<int64_t>(m);  // per-rank presence bitmap
      int64_t window_values = 0;
      bool any = false;
      for (size_t j = 0; j < m; ++j) {
        if (!aggs[base + j].empty()) {
          payload += 4 * self->wire_.counter_bits +
                     (aggs[base + j].has_hint && self->options_.use_hints
                          ? self->wire_.value_bits
                          : 0);
          any = true;
        }
        if (!windows[base + j].empty()) {
          payload += static_cast<int64_t>(windows[base + j].size()) *
                     self->wire_.value_bits;
          window_values += static_cast<int64_t>(windows[base + j].size());
          any = true;
        }
      }
      WaveSend send;
      if (any) {
        send.payload_bits = payload;
        send.value_count = window_values;
      }
      return send;
    }
    void OnLost(int v) {
      const size_t base = static_cast<size_t>(v) * m;
      for (size_t j = 0; j < m; ++j) {
        aggs[base + j] = ValidationAgg{};
        windows[base + j].clear();
      }
    }
  };
  Ops ops{this, net, values_by_vertex, aggs, windows, m};
  RunConvergecastWave(net, ops);
  prev_values_ = values_by_vertex;

  // --- Per-rank resolution -------------------------------------------------
  const size_t root_base = static_cast<size_t>(net->root()) * m;
  std::vector<int64_t> new_filters(m);
  bool any_changed = false;
  for (size_t j = 0; j < m; ++j) {
    std::vector<int64_t>& window = windows[root_base + j];
    std::sort(window.begin(), window.end());
    const int64_t q = ResolveRank(net, values_by_vertex, &states_[j], window,
                                  aggs[root_base + j]);
    new_filters[j] = q;
    any_changed |= (q != states_[j].filter);
  }

  // One filter broadcast carries every changed rank.
  if (any_changed) {
    int64_t changed = 0;
    for (size_t j = 0; j < m; ++j) {
      changed += (new_filters[j] != states_[j].filter);
    }
    net->FloodFromRoot(changed * (8 + wire_.value_bits));
  }
  for (size_t j = 0; j < m; ++j) {
    PushDelta(&states_[j], new_filters[j] - states_[j].filter);
    states_[j].filter = new_filters[j];
  }
}

int64_t MultiIqProtocol::ResolveRank(Network* net,
                                     const std::vector<int64_t>& values,
                                     RankState* state,
                                     const std::vector<int64_t>& window,
                                     const ValidationAgg& validation) {
  const int64_t n = net->num_sensors();
  const int64_t k = state->k;
  const int64_t v_old = state->filter;
  ApplyCounters(validation, n, &state->counts);
  RootCounts& counts = state->counts;

  if (CountsValid(counts, k)) return v_old;

  if (counts.l >= k) {  // moved down (§4.2.2)
    const int64_t a_below = std::count_if(
        window.begin(), window.end(),
        [&](int64_t x) { return x < v_old; });
    if (counts.l - a_below < k) {
      const int64_t idx = a_below - (counts.l - k) - 1;
      WSNQ_CHECK_GE(idx, 0);
      WSNQ_CHECK_LT(idx, a_below);
      const int64_t q = window[static_cast<size_t>(idx)];
      counts.e = std::count(window.begin(), window.end(), q);
      counts.l = (counts.l - a_below) +
                 std::count_if(window.begin(), window.end(),
                               [&](int64_t x) { return x < q; });
      counts.g = n - counts.l - counts.e;
      return q;
    }
    const int64_t f1 = counts.l - k - a_below + 1;
    const int64_t hi = v_old + state->xi_l - 1;
    int64_t lo = range_min_;
    if (options_.use_hints && validation.has_hint) {
      const int64_t d = std::max(v_old - validation.min_changed,
                                 validation.max_changed - v_old);
      lo = std::max(range_min_, v_old - d);
    }
    net->FloodFromRoot(wire_.fcount_bits + 2 * wire_.bound_bits);
    const std::vector<int64_t> r = TopFConvergecast(
        net, values, lo, hi, f1, /*largest=*/true, wire_, &ws_);
    ++refinements_;
    WSNQ_CHECK_GE(static_cast<int64_t>(r.size()), f1);
    const int64_t q = r[r.size() - static_cast<size_t>(f1)];
    const int64_t below_window = counts.l - a_below;
    counts.e = std::count(r.begin(), r.end(), q);
    counts.l = below_window -
               std::count_if(r.begin(), r.end(),
                             [&](int64_t x) { return x >= q; });
    counts.g = n - counts.l - counts.e;
    return q;
  }

  // moved up
  const int64_t a_above = std::count_if(
      window.begin(), window.end(), [&](int64_t x) { return x > v_old; });
  if (counts.l + counts.e + a_above >= k) {
    const int64_t rank_in_gt = k - counts.l - counts.e;
    const int64_t idx =
        static_cast<int64_t>(window.size()) - a_above + rank_in_gt - 1;
    WSNQ_CHECK_GE(idx, 0);
    WSNQ_CHECK_LT(idx, static_cast<int64_t>(window.size()));
    const int64_t q = window[static_cast<size_t>(idx)];
    const int64_t below_gt = counts.l + counts.e;
    counts.e = std::count(window.begin(), window.end(), q);
    counts.l = below_gt + std::count_if(window.begin(), window.end(),
                                        [&](int64_t x) {
                                          return x > v_old && x < q;
                                        });
    counts.g = n - counts.l - counts.e;
    return q;
  }
  const int64_t f2 = k - (counts.l + counts.e) - a_above;
  const int64_t lo = v_old + state->xi_r + 1;
  int64_t hi = range_max_;
  if (options_.use_hints && validation.has_hint) {
    const int64_t d = std::max(v_old - validation.min_changed,
                               validation.max_changed - v_old);
    hi = std::min(range_max_, v_old + d);
  }
  net->FloodFromRoot(wire_.fcount_bits + 2 * wire_.bound_bits);
  const std::vector<int64_t> r = TopFConvergecast(
      net, values, lo, hi, f2, /*largest=*/false, wire_, &ws_);
  ++refinements_;
  WSNQ_CHECK_GE(static_cast<int64_t>(r.size()), f2);
  const int64_t q = r[static_cast<size_t>(f2 - 1)];
  const int64_t below_region = counts.l + counts.e + a_above;
  counts.e = std::count(r.begin(), r.end(), q);
  counts.l = below_region + std::count_if(r.begin(), r.end(),
                                          [&](int64_t x) { return x < q; });
  counts.g = n - counts.l - counts.e;
  return q;
}

void MultiIqProtocol::PushDelta(RankState* state, int64_t delta) {
  state->deltas.push_back(delta);
  while (static_cast<int>(state->deltas.size()) > options_.m - 1) {
    state->deltas.pop_front();
  }
  int64_t lo = 0, hi = 0;
  for (int64_t d : state->deltas) {
    lo = std::min(lo, d);
    hi = std::max(hi, d);
  }
  state->xi_l = lo;
  state->xi_r = hi;
}

}  // namespace wsnq
