// The other two classes of the paper's §3.1 taxonomy, built from scratch so
// the exact protocols have something to be compared against
// (bench/ext_approx_tradeoff):
//
//  * approximate algorithms — bounded-size quantile summaries aggregated up
//    the tree: QdigestProtocol (Shrivastava et al. [26]) and GkProtocol
//    (Greenwald & Khanna [10]); deterministic rank error bounds;
//  * probabilistic algorithms — SamplingProtocol (cf. [1, 4, 14]): every
//    node reports its value with probability p, the root reads the quantile
//    off the sample; no hard bound, but concentration makes large errors
//    unlikely.
//
// All three implement QuantileProtocol but do NOT promise exactness;
// measure them with the rank-error metric, not the oracle-equality check.

#ifndef WSNQ_ALGO_APPROXIMATE_H_
#define WSNQ_ALGO_APPROXIMATE_H_

#include <cstdint>
#include <vector>

#include "algo/common.h"
#include "algo/protocol.h"
#include "sketch/gk_summary.h"
#include "sketch/qdigest.h"

namespace wsnq {

/// Per-round q-digest aggregation.
class QdigestProtocol : public QuantileProtocol {
 public:
  struct Options {
    /// Compression parameter k of the q-digest; error <= N * height / k.
    int64_t compression = 32;
  };

  QdigestProtocol(int64_t k, int64_t range_min, int64_t range_max,
                  const WireFormat& wire, const Options& options);

  const char* name() const override { return "QDIGEST"; }
  void RunRound(Network* net, const std::vector<int64_t>& values_by_vertex,
                int64_t round) override;
  int64_t quantile() const override { return quantile_; }
  RootCounts root_counts() const override { return counts_; }

  /// Worst-case absolute rank error of the last answer.
  int64_t last_error_bound() const { return last_error_bound_; }

 private:
  int64_t k_;
  int64_t range_min_;
  int64_t range_max_;
  int height_;
  WireFormat wire_;
  Options options_;
  int64_t quantile_ = 0;
  int64_t last_error_bound_ = 0;
  RootCounts counts_;
};

/// Per-round Greenwald-Khanna summary aggregation.
class GkProtocol : public QuantileProtocol {
 public:
  struct Options {
    /// Summary error parameter; rank error <= epsilon * |N| per merge
    /// level in the worst case.
    double epsilon = 0.05;
  };

  GkProtocol(int64_t k, int64_t range_min, int64_t range_max,
             const WireFormat& wire, const Options& options);

  const char* name() const override { return "GK"; }
  void RunRound(Network* net, const std::vector<int64_t>& values_by_vertex,
                int64_t round) override;
  int64_t quantile() const override { return quantile_; }
  RootCounts root_counts() const override { return counts_; }

 private:
  int64_t k_;
  WireFormat wire_;
  Options options_;
  int64_t quantile_ = 0;
  RootCounts counts_;
};

/// Per-round Bernoulli sampling (probabilistic).
class SamplingProtocol : public QuantileProtocol {
 public:
  struct Options {
    /// Inclusion probability of every node's measurement.
    double probability = 0.25;
    /// Seed of the (deterministic, per-node/round) sampling hash.
    uint64_t seed = 99;
  };

  SamplingProtocol(int64_t k, int64_t range_min, int64_t range_max,
                   const WireFormat& wire, const Options& options);

  const char* name() const override { return "SAMPLE"; }
  void RunRound(Network* net, const std::vector<int64_t>& values_by_vertex,
                int64_t round) override;
  int64_t quantile() const override { return quantile_; }
  RootCounts root_counts() const override { return counts_; }

 private:
  int64_t k_;
  int64_t range_min_;
  int64_t range_max_;
  WireFormat wire_;
  Options options_;
  int64_t quantile_ = 0;
  RootCounts counts_;
};

}  // namespace wsnq

#endif  // WSNQ_ALGO_APPROXIMATE_H_
