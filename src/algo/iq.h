// IQ — Interval-based Quantiles (§4.2, the paper's main contribution).
//
// IQ maintains, at every node, the filter v (last quantile) plus an
// adaptive interval Xi = [v + xi_l, v + xi_r] (xi_l <= 0 <= xi_r) that
// tracks the quantile's recent movement pattern. During validation each
// node whose value lies in Xi ships the value itself (multiset A) in
// addition to the usual POS movement counters. If the new quantile falls
// inside Xi the root reads it straight out of A — zero refinements. If not,
// one single refinement fetches exactly the f_1 largest (f_2 smallest)
// missing values below (above) the window, so a round never needs more than
// two convergecasts.
//
// After every round the window adapts (Eq. 1-2): xi_l/xi_r are the min/max
// of the last m-1 quantile deltas, clamped to <= 0 / >= 0 — widening toward
// a downward/upward trend and collapsing on the quiet side. Nodes track the
// deltas locally from the filter broadcasts (a missing broadcast means
// delta 0), so no extra dissemination is needed.

#ifndef WSNQ_ALGO_IQ_H_
#define WSNQ_ALGO_IQ_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "algo/common.h"
#include "algo/protocol.h"

namespace wsnq {

/// Interval-based heuristic continuous quantile protocol.
class IqProtocol : public QuantileProtocol {
 public:
  /// How the initial half-width xi of the window is derived from the k
  /// smallest values collected during initialization (§4.2.1).
  enum class InitStrategy {
    /// xi = c * (v_k - v_1) / k — the mean gap scaled by c.
    kMeanGap,
    /// xi = c * median of consecutive gaps — robust against outliers.
    kMedianGap,
  };

  struct Options {
    /// History length m of Eq. 1-2: the window spans the last m-1 deltas.
    int m = 6;
    InitStrategy init_strategy = InitStrategy::kMeanGap;
    /// The constant c of §4.2.1 "to tweak the number of values transmitted
    /// during validation".
    double init_c = 1.0;
    /// Bound refinement intervals with the one-value max-distance hint.
    bool use_hints = true;
  };

  IqProtocol(int64_t k, int64_t range_min, int64_t range_max,
             const WireFormat& wire, const Options& options);

  const char* name() const override { return "IQ"; }
  void RunRound(Network* net, const std::vector<int64_t>& values_by_vertex,
                int64_t round) override;
  int64_t quantile() const override { return quantile_; }
  RootCounts root_counts() const override { return counts_; }
  int64_t refinements_last_round() const override { return refinements_; }

  int64_t xi_l() const { return xi_l_; }
  int64_t xi_r() const { return xi_r_; }

  /// Adopts foreign continuous state; `recent_deltas` seeds the window
  /// history. Used by the adaptive switching protocol (§4.2). The switch
  /// announcement must also carry the window bounds to the nodes; the
  /// caller accounts for that broadcast.
  void AdoptState(int64_t filter, const RootCounts& counts,
                  std::vector<int64_t> prev_values,
                  const std::deque<int64_t>& recent_deltas);

 private:
  void Initialize(Network* net, const std::vector<int64_t>& values);
  /// Validation convergecast: POS counters + hint + the multiset A of all
  /// values inside the window (except values equal to the filter).
  ValidationAgg ValidationWithWindow(Network* net,
                                     const std::vector<int64_t>& values,
                                     std::vector<int64_t>* window_values);
  void PushDelta(int64_t delta);

  int64_t k_;
  int64_t range_min_;
  int64_t range_max_;
  WireFormat wire_;
  Options options_;

  int64_t quantile_ = 0;
  int64_t filter_ = 0;
  int64_t xi_l_ = 0;  // <= 0
  int64_t xi_r_ = 0;  // >= 0
  RootCounts counts_;
  std::vector<int64_t> prev_values_;
  /// Network::tree_epoch() the state was initialized under; a mismatch
  /// (fault-driven tree repair) forces re-initialization.
  int64_t tree_epoch_ = 0;
  std::deque<int64_t> deltas_;  // last (m-1) quantile deltas
  int64_t refinements_ = 0;
  WaveWorkspace ws_;
};

}  // namespace wsnq

#endif  // WSNQ_ALGO_IQ_H_
