// LCLL (Liu et al. [16], as configured and improved in §5.1.6) — the
// message-size-driven histogram baseline, reconstructed from the paper's
// behavioural description (see DESIGN.md §1.2 for the mapping of every
// claim in §5 to a design decision here):
//
//  * b is set by the message size: b = max_payload / s_b (= 64 by default);
//  * the root maintains a *focused window* of b fine buckets (width
//    w = ceil(tau / b^2), at least 1) around the current quantile, plus two
//    boundary buckets (everything below / above the window);
//  * validation is delta-encoded (§5.1.6's improvement): a node transmits
//    only when its value changed buckets, as a (-1 old bucket, +1 new
//    bucket) pair; nodes sitting in a boundary bucket stay silent;
//  * when the k-th value leaves the window, LCLL-H ("Hierarchical
//    Refining") b-ary drills the boundary region (logarithmic in the
//    quantile distance) and then re-establishes the window around the new
//    quantile with a full-network histogram convergecast — the "zooming in
//    and zooming out" the paper charges it for; LCLL-S ("Slip Refining")
//    slides the window one window-length at a time toward the quantile
//    (linear in the distance, but each step only touches the few nodes
//    inside the slipped window);
//  * over-wide buckets (w > 1) are resolved by direct value retrieval or a
//    b-ary sub-drill, "a node did only transmit its value during a
//    refinement if it was contained in the refinement interval".

#ifndef WSNQ_ALGO_LCLL_H_
#define WSNQ_ALGO_LCLL_H_

#include <cstdint>
#include <vector>

#include "algo/common.h"
#include "algo/protocol.h"

namespace wsnq {

/// Focused-window histogram protocol with hierarchical or slip refining.
class LcllProtocol : public QuantileProtocol {
 public:
  enum class RefineMode { kHierarchical, kSlip };

  struct Options {
    RefineMode mode = RefineMode::kHierarchical;
    /// Buckets per histogram; 0 = max_payload_bits / bucket_count_bits.
    int buckets = 0;
    /// Window bucket width; 0 = max(1, ceil(tau / buckets^2)).
    int64_t bucket_width = 0;
    /// Resolve over-wide buckets by direct value requests when they fit in
    /// a packet.
    bool direct_retrieval = true;
  };

  LcllProtocol(int64_t k, int64_t range_min, int64_t range_max,
               const WireFormat& wire, const Options& options);

  const char* name() const override {
    return options_.mode == RefineMode::kHierarchical ? "LCLL-H" : "LCLL-S";
  }
  void RunRound(Network* net, const std::vector<int64_t>& values_by_vertex,
                int64_t round) override;
  int64_t quantile() const override { return quantile_; }
  RootCounts root_counts() const override { return counts_; }
  int64_t refinements_last_round() const override { return refinements_; }

  int buckets() const { return buckets_; }
  int64_t bucket_width() const { return width_; }
  int64_t window_lo() const { return window_lo_; }
  int64_t window_hi() const { return window_lo_ + span(); }

 private:
  int64_t span() const { return static_cast<int64_t>(buckets_) * width_; }
  /// Bucket id of a value: -1 below the window, 0..b-1 inside, b above.
  int BucketId(int64_t value) const;
  /// Aligns `x` down to the global w-grid anchored at range_min and clamps
  /// it into the admissible window origin range.
  int64_t AlignWindowLo(int64_t x) const;

  void Initialize(Network* net, const std::vector<int64_t>& values);
  /// Delta-encoded validation convergecast; applies deltas to the root's
  /// window histogram and boundary counts.
  void Validate(Network* net, const std::vector<int64_t>& values);
  /// Floods a new window origin and rebuilds histogram + boundary counts
  /// with a full-network histogram convergecast (LCLL-H's "zoom out").
  void Reestablish(Network* net, const std::vector<int64_t>& values,
                   int64_t new_window_lo);
  /// Slides the window one span toward lower/higher values, updating the
  /// bookkeeping from a window-only histogram convergecast (LCLL-S).
  void Slip(Network* net, const std::vector<int64_t>& values, bool down);
  /// Resolves the exact quantile inside window bucket `j`, whose first
  /// covered rank is cl + 1.
  void ResolveBucket(Network* net, const std::vector<int64_t>& values, int j,
                     int64_t cl);
  /// Loss recovery: re-syncs the window histogram around the last known
  /// quantile and resolves a clamped rank from whatever was received.
  void BestEffortResolve(Network* net, const std::vector<int64_t>& values);

  int64_t k_;
  int64_t range_min_;
  int64_t range_max_;
  WireFormat wire_;
  Options options_;
  int buckets_ = 0;
  int64_t width_ = 1;
  /// log2(width_) when it is a power of two, else -1: BucketId runs twice
  /// per sensor per validation wave, so the division matters.
  int width_shift_ = 0;

  int64_t window_lo_ = 0;
  std::vector<int64_t> hist_;  // window bucket counts
  int64_t below_ = 0;          // count < window_lo
  int64_t above_ = 0;          // count >= window_hi

  int64_t quantile_ = 0;
  RootCounts counts_;
  std::vector<int64_t> prev_values_;
  /// BucketId(prev_values_[v]) under prev_bucket_window_lo_, maintained so
  /// the steady-state validation prescan costs one compare per vertex
  /// instead of recomputing last round's bucket. Rebuilt whenever the
  /// window moves (refinements) or the protocol re-initializes.
  std::vector<int> prev_bucket_;
  int64_t prev_bucket_window_lo_ = 0;
  bool prev_bucket_valid_ = false;
  /// Validation-wave scratch (see Validate): delta_dirty_[v] — v's subtree
  /// carries deltas this round; delta_changed_[v] — v's own bucket moved,
  /// with the old bucket stashed in delta_from_[v].
  std::vector<uint8_t> delta_dirty_;
  std::vector<uint8_t> delta_changed_;
  std::vector<int> delta_from_;
  /// Network::tree_epoch() the state was initialized under; a mismatch
  /// (fault-driven tree repair) forces re-initialization.
  int64_t tree_epoch_ = 0;
  int64_t refinements_ = 0;
  WaveWorkspace ws_;
};

}  // namespace wsnq

#endif  // WSNQ_ALGO_LCLL_H_
