// The bucket-count cost model of §4.1 (from the authors' prior snapshot
// work [21]), which HBC uses to size its refinement histograms.
//
// One refinement round costs, at the hotspot,
//     cost_per_round(b) = 2*s_h + s_r + b*s_b   [bits]
// (one request broadcast: header + refinement payload; one histogram
// response: header + b bucket counts), and a b-ary search over a universe of
// tau values needs log_b(tau) rounds. Minimizing
//     C(b) = log_b(tau) * cost_per_round(b)
// over continuous b yields  b * (ln b - 1) = (2*s_h + s_r) / s_b =: K, i.e.
//     b_exact = exp( W0(K / e) + 1 ),
// the closed form quoted in §4.1 ("lower bound of the optimal number of
// buckets ... with W(x) the Lambert W function"). OptimalBuckets() finds the
// true discrete minimizer of the ceil()-ed cost for comparison
// (bench/tbl_cost_model reproduces the approximation-quality table).

#ifndef WSNQ_ALGO_COST_MODEL_H_
#define WSNQ_ALGO_COST_MODEL_H_

#include <cstdint>

namespace wsnq {

/// Message-geometry inputs of the bucket cost model.
struct CostModelParams {
  /// s_h: message header/footer [bits].
  int64_t header_bits = 16 * 8;
  /// s_r: refinement request payload (interval bounds) [bits].
  int64_t refinement_bits = 2 * 16;
  /// s_b: one bucket count [bits].
  int64_t bucket_bits = 16;
};

/// Continuous closed-form approximation b_exact (>= 2).
double BExact(const CostModelParams& params);

/// Per-query cost in bits of a b-ary search over `universe` values.
double BArySearchCostBits(const CostModelParams& params, int buckets,
                          int64_t universe);

/// Exact discrete minimizer of BArySearchCostBits over b in [2, max_buckets].
int OptimalBuckets(const CostModelParams& params, int64_t universe,
                   int max_buckets = 4096);

/// b_exact rounded to the nearest admissible integer (>= 2); what HBC uses.
int RoundedBExact(const CostModelParams& params);

}  // namespace wsnq

#endif  // WSNQ_ALGO_COST_MODEL_H_
