#include "algo/oracle.h"

#include <algorithm>

#include "util/check.h"

namespace wsnq {

int64_t OracleKth(const std::vector<int64_t>& sensor_values, int64_t k) {
  WSNQ_CHECK_GE(k, 1);
  WSNQ_CHECK_LE(k, static_cast<int64_t>(sensor_values.size()));
  std::vector<int64_t> copy = sensor_values;
  std::nth_element(copy.begin(), copy.begin() + (k - 1), copy.end());
  return copy[static_cast<size_t>(k - 1)];
}

RootCounts OracleCounts(const std::vector<int64_t>& sensor_values,
                        int64_t threshold) {
  RootCounts counts;
  for (int64_t v : sensor_values) {
    if (v < threshold) {
      ++counts.l;
    } else if (v == threshold) {
      ++counts.e;
    } else {
      ++counts.g;
    }
  }
  return counts;
}

int64_t OracleRankError(const std::vector<int64_t>& sensor_values,
                        int64_t reported, int64_t k) {
  const RootCounts counts = OracleCounts(sensor_values, reported);
  if (k <= counts.l) return counts.l + 1 - k;  // reported sits too high
  if (k > counts.l + counts.e) return k - (counts.l + counts.e);  // too low
  return 0;
}

int64_t OracleKthSorted(const std::vector<int64_t>& sorted_sensor_values,
                        int64_t k) {
  WSNQ_CHECK_GE(k, 1);
  WSNQ_CHECK_LE(k, static_cast<int64_t>(sorted_sensor_values.size()));
  WSNQ_DCHECK(std::is_sorted(sorted_sensor_values.begin(),
                             sorted_sensor_values.end()));
  return sorted_sensor_values[static_cast<size_t>(k - 1)];
}

int64_t OracleRankErrorSorted(
    const std::vector<int64_t>& sorted_sensor_values, int64_t reported,
    int64_t k) {
  const auto lo = std::lower_bound(sorted_sensor_values.begin(),
                                   sorted_sensor_values.end(), reported);
  const auto hi = std::upper_bound(lo, sorted_sensor_values.end(), reported);
  const int64_t less = lo - sorted_sensor_values.begin();
  const int64_t less_equal = hi - sorted_sensor_values.begin();
  if (k <= less) return less + 1 - k;                // reported sits too high
  if (k > less_equal) return k - less_equal;         // too low
  return 0;
}

std::vector<int64_t> SensorValues(
    const Network& net, const std::vector<int64_t>& values_by_vertex) {
  std::vector<int64_t> sensors;
  sensors.reserve(static_cast<size_t>(net.num_sensors()));
  for (int v = 0; v < net.num_vertices(); ++v) {
    if (!net.is_root(v)) {
      sensors.push_back(values_by_vertex[static_cast<size_t>(v)]);
    }
  }
  return sensors;
}

}  // namespace wsnq
