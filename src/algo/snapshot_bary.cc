#include "algo/snapshot_bary.h"

#include <algorithm>

#include "algo/hist_codec.h"
#include "util/check.h"

namespace wsnq {

DrillResult BAryDrill(Network* net, const std::vector<int64_t>& values,
                      int64_t lb, int64_t ub, int64_t below_lb, int64_t k,
                      const DrillOptions& options, const WireFormat& wire,
                      int64_t less_than_ub, WaveWorkspace* ws) {
  WSNQ_CHECK_LT(lb, ub);
  if (below_lb >= 0) {
    WSNQ_CHECK_LT(below_lb, k);
  } else {
    WSNQ_CHECK_GE(less_than_ub, k);
  }
  WSNQ_CHECK_GE(options.buckets, 2);

  DrillResult result;
  result.last_lb = lb;
  result.last_ub = ub;
  result.below_last = below_lb;
  result.in_last = -1;  // unknown until the first histogram arrives

  int64_t cl = below_lb;  // -1 while unknown
  int64_t count_in = -1;  // values in [lb, ub); -1 = unknown
  while (true) {
    // Width-one intervals are already unique: the k-th value is lb itself.
    if (ub - lb == 1) {
      result.quantile = lb;
      result.counts.l = cl;
      // count_in may be unknown when the enclosing bucket was width one
      // from the start; resolve it with one histogram below.
      if (count_in >= 0) {
        result.counts.e = count_in;
        result.counts.g = net->num_sensors() - cl - count_in;
        return result;
      }
    }
    if (options.direct_capacity > 0 && count_in >= 0 &&
        count_in <= options.direct_capacity && ub - lb > 1) {
      // Direct value retrieval (§4.1.1 improvement).
      net->FloodFromRoot(2 * wire.bound_bits);
      const std::vector<int64_t> collected =
          RangeValuesConvergecast(net, values, lb, ub - 1, wire, ws);
      ++result.rounds;
      const int64_t rank = k - cl;  // 1-based within the interval
      if (!net->lossy()) {
        WSNQ_CHECK_EQ(static_cast<int64_t>(collected.size()), count_in);
        WSNQ_CHECK_GE(rank, 1);
        WSNQ_CHECK_LE(rank, count_in);
      }
      result.quantile = BestEffortKth(collected, rank, lb);
      result.counts.l = cl;
      result.counts.e = 0;
      for (int64_t v : collected) {
        if (v < result.quantile) ++result.counts.l;
        if (v == result.quantile) ++result.counts.e;
      }
      result.counts.g =
          net->num_sensors() - result.counts.l - result.counts.e;
      return result;
    }

    // Refinement request + histogram response.
    const BucketLayout layout(lb, ub, options.buckets);
    net->FloodFromRoot(2 * wire.bound_bits);
    const SparseHistogram hist =
        HistogramConvergecast(net, values, layout, wire, ws);
    ++result.rounds;
    if (cl < 0) {
      // Downward HBC refinement: derive the count below lb from the count
      // below ub and the interval population (§4.1.1).
      cl = less_than_ub - hist.Total();
      if (net->lossy()) {
        cl = std::clamp<int64_t>(cl, 0, k - 1);
      } else {
        WSNQ_CHECK_GE(cl, 0);
        WSNQ_CHECK_LT(cl, k);
      }
    }
    result.last_lb = lb;
    result.last_ub = ub;
    result.below_last = cl;
    result.in_last = hist.Total();
    if (count_in >= 0 && !net->lossy()) {
      WSNQ_CHECK_EQ(hist.Total(), count_in);
    }

    // Locate the bucket containing the k-th value.
    int64_t running = cl;
    int bucket = -1;
    for (int j = 0; j < hist.num_buckets(); ++j) {
      if (running + hist.count(j) >= k) {
        bucket = j;
        break;
      }
      running += hist.count(j);
    }
    if (bucket < 0) {
      // Lost histograms can leave the cumulative counts short of rank k;
      // descend into the last non-empty bucket (or give up on an empty
      // histogram and report the interval's lower bound).
      WSNQ_CHECK(net->lossy());
      for (int j = hist.num_buckets() - 1; j >= 0; --j) {
        if (hist.count(j) > 0) {
          bucket = j;
          break;
        }
      }
      if (bucket < 0) {
        result.quantile = lb;
        result.counts.l = std::max<int64_t>(cl, 0);
        result.counts.e = 0;
        result.counts.g =
            net->num_sensors() - result.counts.l;
        return result;
      }
      running = std::max<int64_t>(cl, k - hist.count(bucket));
    }
    lb = layout.BucketLb(bucket);
    ub = layout.BucketUb(bucket);
    cl = running;
    count_in = hist.count(bucket);
    // Drill loop invariant: the chosen bucket is a genuine sub-interval
    // and, absent loss, still brackets rank k (cl < k <= cl + count_in).
    WSNQ_DCHECK_LT(lb, ub);
    if (!net->lossy()) {
      WSNQ_DCHECK_LT(cl, k);
      WSNQ_DCHECK_GE(cl + count_in, k);
    }
  }
}

void SnapshotBaryProtocol::RunRound(
    Network* net, const std::vector<int64_t>& values_by_vertex,
    int64_t round) {
  if (round == 0) {
    // Query dissemination.
    net->FloodFromRoot(wire_.counter_bits);
  }
  result_ = BAryDrill(net, values_by_vertex, range_min_, range_max_ + 1,
                      /*below_lb=*/0, k_, options_, wire_,
                      /*less_than_ub=*/-1, &ws_);
}

}  // namespace wsnq
