#include "algo/iq.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/stats.h"
#include "util/trace.h"

namespace wsnq {

IqProtocol::IqProtocol(int64_t k, int64_t range_min, int64_t range_max,
                       const WireFormat& wire, const Options& options)
    : k_(k),
      range_min_(range_min),
      range_max_(range_max),
      wire_(wire),
      options_(options) {
  WSNQ_CHECK_GE(k, 1);
  WSNQ_CHECK_LE(range_min, range_max);
  WSNQ_CHECK_GE(options.m, 2);
}

void IqProtocol::Initialize(Network* net,
                            const std::vector<int64_t>& values) {
  // TAG collection, like POS (§4.2.1: "Since POS uses TAG during
  // initialization, we will use the same algorithm").
  net->FloodFromRoot(wire_.counter_bits);
  const std::vector<int64_t> collected =
      CollectKSmallest(net, values, k_, wire_, &ws_);
  if (!net->lossy()) {
    WSNQ_CHECK_GE(static_cast<int64_t>(collected.size()), k_);
  }
  quantile_ = BestEffortKth(collected, k_, (range_min_ + range_max_) / 2);
  counts_ = CountsFromCollection(collected, quantile_, net->num_sensors());

  // Initial window half-width from the k smallest values (§4.2.1).
  int64_t xi = 1;
  const int64_t known =
      std::min(k_, static_cast<int64_t>(collected.size()));
  if (known >= 2) {
    if (options_.init_strategy == InitStrategy::kMeanGap) {
      const double spread = static_cast<double>(
          collected[static_cast<size_t>(known - 1)] - collected[0]);
      xi = static_cast<int64_t>(std::llround(
          options_.init_c * spread / static_cast<double>(known)));
    } else {
      std::vector<double> gaps;
      gaps.reserve(static_cast<size_t>(known - 1));
      for (int64_t i = 1; i < known; ++i) {
        gaps.push_back(static_cast<double>(
            collected[static_cast<size_t>(i)] -
            collected[static_cast<size_t>(i - 1)]));
      }
      xi = static_cast<int64_t>(
          std::llround(options_.init_c * Median(std::move(gaps))));
    }
    if (xi < 1) xi = 1;
  }
  xi_l_ = -xi;
  xi_r_ = xi;
  WSNQ_TRACE_EVENT("init", "window", -1, {"xi_l", xi_l_}, {"xi_r", xi_r_});

  // Filter broadcast carries the tuple (v_k, xi) (§4.2.1).
  net->FloodFromRoot(2 * wire_.value_bits);
  filter_ = quantile_;
}

namespace {

/// Ops for the windowed validation wave (§4.2.2): POS transition counters
/// plus the multiset A of in-window values, in struct-of-arrays rows.
struct WindowValidationOps {
  Network* net;
  const std::vector<int64_t>& values;
  const std::vector<int64_t>& prev_values;
  const WireFormat& wire;
  int64_t filter;
  int64_t window_lo;
  int64_t window_hi;
  int hint_values;
  std::vector<ValidationAgg>& inbox;
  std::vector<std::vector<int64_t>>& a_inbox;

  WaveSend Process(int v, WaveLane& /*lane*/) {
    ValidationAgg& agg = inbox[static_cast<size_t>(v)];
    std::vector<int64_t>& a_set = a_inbox[static_cast<size_t>(v)];
    if (!net->is_root(v)) {
      const size_t i = static_cast<size_t>(v);
      agg.AddTransition(ClassifyThreshold(prev_values[i], filter),
                        ClassifyThreshold(values[i], filter), values[i]);
      // A-contribution: values inside Xi, except the filter value itself,
      // are shipped verbatim every round (§4.2.2).
      if (values[i] >= window_lo && values[i] <= window_hi &&
          values[i] != filter) {
        a_set.push_back(values[i]);
      }
    }
    for (int child : net->tree().children[static_cast<size_t>(v)]) {
      agg.Merge(inbox[static_cast<size_t>(child)]);
      auto& theirs = a_inbox[static_cast<size_t>(child)];
      if (a_set.empty()) {
        a_set.swap(theirs);
      } else {
        a_set.insert(a_set.end(), theirs.begin(), theirs.end());
        theirs.clear();
      }
    }
    WaveSend send;
    if (!agg.empty() || !a_set.empty()) {
      send.payload_bits =
          4 * wire.counter_bits +
          (agg.has_hint ? hint_values * wire.value_bits : 0) +
          static_cast<int64_t>(a_set.size()) * wire.value_bits;
      send.value_count = static_cast<int64_t>(a_set.size());
    }
    return send;
  }
  void OnLost(int v) {
    inbox[static_cast<size_t>(v)] = ValidationAgg{};  // lost uplink
    a_inbox[static_cast<size_t>(v)].clear();
  }
};

}  // namespace

ValidationAgg IqProtocol::ValidationWithWindow(
    Network* net, const std::vector<int64_t>& values,
    std::vector<int64_t>* window_values) {
  // Eq. 1/2 window sanity: xi_l <= 0 <= xi_r, so the window always
  // contains the current filter value.
  WSNQ_DCHECK_LE(xi_l_, 0);
  WSNQ_DCHECK_GE(xi_r_, 0);
  const size_t n = static_cast<size_t>(net->num_vertices());
  std::vector<ValidationAgg>& inbox = ws_.PrepareAgg(n);
  std::vector<std::vector<int64_t>>& a_inbox = ws_.PrepareWindows(n);
  WindowValidationOps ops{net,
                          values,
                          prev_values_,
                          wire_,
                          filter_,
                          filter_ + xi_l_,
                          filter_ + xi_r_,
                          options_.use_hints ? 1 : 0,
                          inbox,
                          a_inbox};
  RunConvergecastWave(net, ops);
  const std::vector<int64_t>& root_a =
      a_inbox[static_cast<size_t>(net->root())];
  window_values->assign(root_a.begin(), root_a.end());
  std::sort(window_values->begin(), window_values->end());
  return inbox[static_cast<size_t>(net->root())];
}

void IqProtocol::RunRound(Network* net,
                          const std::vector<int64_t>& values_by_vertex,
                          int64_t round) {
  refinements_ = 0;
  // Round 0, or the routing tree changed under us (fault-driven repair):
  // rebuild the root state rather than miscount over a stale topology.
  if (round == 0 || tree_epoch_ != net->tree_epoch()) {
    tree_epoch_ = net->tree_epoch();
    Initialize(net, values_by_vertex);
    prev_values_ = values_by_vertex;
    return;
  }
  WSNQ_CHECK_EQ(prev_values_.size(), values_by_vertex.size());

  std::vector<int64_t> a;  // sorted window multiset A
  const ValidationAgg validation = [&] {
    WSNQ_TRACE_SCOPE("validation", "window_convergecast", -1,
                     {"lo", filter_ + xi_l_}, {"hi", filter_ + xi_r_});
    return ValidationWithWindow(net, values_by_vertex, &a);
  }();
  // Ξ hit accounting (§4.2.2): values that landed inside the window were
  // shipped in A; the round needs a refinement convergecast only when the
  // new quantile escaped Ξ.
  WSNQ_TRACE_EVENT("validation", "window_hits", -1,
                   {"in_window", static_cast<int64_t>(a.size())});
  WSNQ_DCHECK(std::is_sorted(a.begin(), a.end()));
  ApplyCounters(validation, net->num_sensors(), &counts_);
  if (!net->lossy()) {
    WSNQ_DCHECK(CountsConserved(counts_, net->num_sensors()));
  }
  prev_values_ = values_by_vertex;

  const int64_t n = net->num_sensors();
  const int64_t v_old = filter_;
  int64_t q;  // the new quantile

  if (CountsValid(counts_, k_)) {
    // v_k in eq: nothing changed, nothing to broadcast (§4.2.2).
    q = v_old;
  } else if (counts_.l >= k_) {
    // v_k in lt (§4.2.2, "Refinement for v_k in lt").
    const int64_t a_below =
        std::count_if(a.begin(), a.end(),
                      [&](int64_t x) { return x < v_old; });
    if (counts_.l - a_below < k_ && a_below > 0) {
      // The new quantile is already in A: the k-th smallest overall is the
      // k-th smallest of lt, and the (l - a) values below the window are
      // all smaller than A's lt part.
      int64_t idx = a_below - (counts_.l - k_) - 1;
      if (net->lossy()) {
        idx = std::clamp<int64_t>(idx, 0, a_below - 1);
      } else {
        WSNQ_CHECK_GE(idx, 0);
        WSNQ_CHECK_LT(idx, a_below);
      }
      q = a[static_cast<size_t>(idx)];
      counts_.e = std::count(a.begin(), a.end(), q);
      counts_.l = (counts_.l - a_below) +
                  std::count_if(a.begin(), a.end(),
                                [&](int64_t x) { return x < q; });
      counts_.g = n - counts_.l - counts_.e;
    } else {
      // One refinement: fetch the f1 largest values below the window.
      const int64_t f1 = counts_.l - k_ - a_below + 1;
      WSNQ_TRACE_SCOPE("refinement", "below_window", -1, {"f", f1});
      const int64_t hi = v_old + xi_l_ - 1;  // below-window region
      int64_t lo = range_min_;
      if (options_.use_hints && validation.has_hint) {
        const int64_t d = std::max(v_old - validation.min_changed,
                                   validation.max_changed - v_old);
        lo = std::max(range_min_, v_old - d);
      }
      // Request: f1 plus the interval bounds.
      net->FloodFromRoot(wire_.fcount_bits + 2 * wire_.bound_bits);
      const std::vector<int64_t> r = TopFConvergecast(
          net, values_by_vertex, lo, hi, f1, /*largest=*/true, wire_, &ws_);
      refinements_ = 1;
      if (!net->lossy()) {
        WSNQ_CHECK_GE(static_cast<int64_t>(r.size()), f1);
      }
      if (r.empty()) {
        q = v_old;  // response lost entirely; keep the filter
      } else {
        const size_t idx =
            r.size() >= static_cast<size_t>(f1)
                ? r.size() - static_cast<size_t>(f1)
                : 0;
        q = r[idx];  // f1-th largest (clamped under loss)
      }
      const int64_t below_window = counts_.l - a_below;
      counts_.e = std::count(r.begin(), r.end(), q);
      counts_.l = below_window -
                  std::count_if(r.begin(), r.end(),
                                [&](int64_t x) { return x >= q; });
      counts_.g = n - counts_.l - counts_.e;
    }
  } else {
    // v_k in gt (§4.2.2, "Refinement for v_k in gt").
    const int64_t a_above =
        std::count_if(a.begin(), a.end(),
                      [&](int64_t x) { return x > v_old; });
    if (counts_.l + counts_.e + a_above >= k_ && a_above > 0) {
      // The new quantile is in A's gt part.
      const int64_t rank = k_ - counts_.l - counts_.e;  // within gt
      int64_t idx = static_cast<int64_t>(a.size()) - a_above + rank - 1;
      if (net->lossy()) {
        idx = std::clamp<int64_t>(idx, static_cast<int64_t>(a.size()) -
                                           a_above,
                                  static_cast<int64_t>(a.size()) - 1);
      } else {
        WSNQ_CHECK_GE(idx, 0);
        WSNQ_CHECK_LT(idx, static_cast<int64_t>(a.size()));
      }
      q = a[static_cast<size_t>(idx)];
      const int64_t below_gt = counts_.l + counts_.e;
      counts_.e = std::count(a.begin(), a.end(), q);
      counts_.l = below_gt +
                  std::count_if(a.begin(), a.end(), [&](int64_t x) {
                    return x > v_old && x < q;
                  });
      counts_.g = n - counts_.l - counts_.e;
    } else {
      // One refinement: fetch the f2 smallest values above the window.
      const int64_t f2 = k_ - (counts_.l + counts_.e) - a_above;
      WSNQ_TRACE_SCOPE("refinement", "above_window", -1, {"f", f2});
      const int64_t lo = v_old + xi_r_ + 1;  // above-window region
      int64_t hi = range_max_;
      if (options_.use_hints && validation.has_hint) {
        const int64_t d = std::max(v_old - validation.min_changed,
                                   validation.max_changed - v_old);
        hi = std::min(range_max_, v_old + d);
      }
      net->FloodFromRoot(wire_.fcount_bits + 2 * wire_.bound_bits);
      const std::vector<int64_t> r = TopFConvergecast(
          net, values_by_vertex, lo, hi, f2, /*largest=*/false, wire_, &ws_);
      refinements_ = 1;
      if (!net->lossy()) {
        WSNQ_CHECK_GE(static_cast<int64_t>(r.size()), f2);
      }
      if (r.empty()) {
        q = v_old;
      } else {
        const size_t idx = std::min(static_cast<size_t>(f2 - 1),
                                    r.size() - 1);
        q = r[idx];  // f2-th smallest (clamped under loss)
      }
      const int64_t below_region = counts_.l + counts_.e + a_above;
      counts_.e = std::count(r.begin(), r.end(), q);
      counts_.l = below_region +
                  std::count_if(r.begin(), r.end(),
                                [&](int64_t x) { return x < q; });
      counts_.g = n - counts_.l - counts_.e;
    }
  }

  // Filter broadcast iff the quantile changed; nodes derive delta = 0 from
  // a silent round and update the window either way.
  if (q != v_old) net->FloodFromRoot(wire_.value_bits);
  PushDelta(q - v_old);
  WSNQ_TRACE_EVENT("validation", "window_adjust", -1, {"delta", q - v_old},
                   {"xi_l", xi_l_}, {"xi_r", xi_r_},
                   {"refined", refinements_});
  quantile_ = q;
  filter_ = q;
}

void IqProtocol::PushDelta(int64_t delta) {
  deltas_.push_back(delta);
  while (static_cast<int>(deltas_.size()) > options_.m - 1) {
    deltas_.pop_front();
  }
  int64_t lo = 0, hi = 0;
  for (int64_t d : deltas_) {
    lo = std::min(lo, d);
    hi = std::max(hi, d);
  }
  xi_l_ = lo;  // Eq. 1: min(min deltas, 0)
  xi_r_ = hi;  // Eq. 2: max(max deltas, 0)
  WSNQ_DCHECK_LE(xi_l_, 0);
  WSNQ_DCHECK_GE(xi_r_, 0);
}

void IqProtocol::AdoptState(int64_t filter, const RootCounts& counts,
                            std::vector<int64_t> prev_values,
                            const std::deque<int64_t>& recent_deltas) {
  filter_ = filter;
  quantile_ = filter;
  counts_ = counts;
  prev_values_ = std::move(prev_values);
  deltas_.clear();
  for (int64_t d : recent_deltas) PushDelta(d);
  if (deltas_.empty()) PushDelta(0);
}

}  // namespace wsnq
