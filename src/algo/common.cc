#include "algo/common.h"

#include <algorithm>

#include "util/check.h"

namespace wsnq {

void ValidationAgg::Merge(const ValidationAgg& other) {
  into_lt += other.into_lt;
  outof_lt += other.outof_lt;
  into_gt += other.into_gt;
  outof_gt += other.outof_gt;
  if (other.has_hint) {
    if (!has_hint) {
      has_hint = true;
      min_changed = other.min_changed;
      max_changed = other.max_changed;
    } else {
      min_changed = std::min(min_changed, other.min_changed);
      max_changed = std::max(max_changed, other.max_changed);
    }
  }
}

void ValidationAgg::AddTransition(Region from, Region to, int64_t value) {
  if (from == to) return;
  if (to == Region::kLt) ++into_lt;
  if (from == Region::kLt) ++outof_lt;
  if (to == Region::kGt) ++into_gt;
  if (from == Region::kGt) ++outof_gt;
  if (!has_hint) {
    has_hint = true;
    min_changed = value;
    max_changed = value;
  } else {
    min_changed = std::min(min_changed, value);
    max_changed = std::max(max_changed, value);
  }
}

std::vector<int64_t> CollectKSmallest(Network* net,
                                      const std::vector<int64_t>& values,
                                      int64_t k, const WireFormat& wire) {
  WSNQ_CHECK_GE(k, 1);
  const SpanningTree& tree = net->tree();
  const size_t n = static_cast<size_t>(net->num_vertices());
  WSNQ_CHECK_EQ(values.size(), n);

  // inbox[v]: sorted k-smallest (with k-th ties) multiset of v's subtree.
  std::vector<std::vector<int64_t>> inbox(n);
  net->NoteConvergecast();
  for (int v : tree.post_order) {
    std::vector<int64_t>& mine = inbox[static_cast<size_t>(v)];
    if (!net->is_root(v)) mine.push_back(values[static_cast<size_t>(v)]);
    for (int child : tree.children[static_cast<size_t>(v)]) {
      auto& theirs = inbox[static_cast<size_t>(child)];
      mine.insert(mine.end(), theirs.begin(), theirs.end());
      theirs.clear();
      theirs.shrink_to_fit();
    }
    std::sort(mine.begin(), mine.end());
    // Truncate to the k smallest plus all duplicates of the k-th smallest.
    if (static_cast<int64_t>(mine.size()) > k) {
      const int64_t cutoff = mine[static_cast<size_t>(k - 1)];
      size_t keep = static_cast<size_t>(k);
      while (keep < mine.size() && mine[keep] == cutoff) ++keep;
      mine.resize(keep);
    }
    if (!net->is_root(v)) {
      net->CountValues(static_cast<int64_t>(mine.size()));
      if (!net->SendToParent(
              v, static_cast<int64_t>(mine.size()) * wire.value_bits)) {
        mine.clear();  // lost uplink: the parent never sees this subtree
      }
    }
  }
  const std::vector<int64_t>& result = inbox[static_cast<size_t>(net->root())];
  WSNQ_DCHECK(std::is_sorted(result.begin(), result.end()));
  if (!net->lossy()) {
    // Lossless collection is complete up to rank k.
    WSNQ_DCHECK_GE(static_cast<int64_t>(result.size()),
                   std::min<int64_t>(k, net->num_sensors()));
  }
  return result;
}

std::vector<int64_t> RangeValuesConvergecast(
    Network* net, const std::vector<int64_t>& values, int64_t lo, int64_t hi,
    const WireFormat& wire) {
  const SpanningTree& tree = net->tree();
  std::vector<std::vector<int64_t>> inbox(
      static_cast<size_t>(net->num_vertices()));
  net->NoteConvergecast();
  for (int v : tree.post_order) {
    std::vector<int64_t>& mine = inbox[static_cast<size_t>(v)];
    if (!net->is_root(v)) {
      const int64_t value = values[static_cast<size_t>(v)];
      if (value >= lo && value <= hi) mine.push_back(value);
    }
    for (int child : tree.children[static_cast<size_t>(v)]) {
      auto& theirs = inbox[static_cast<size_t>(child)];
      mine.insert(mine.end(), theirs.begin(), theirs.end());
      theirs.clear();
    }
    if (!net->is_root(v) && !mine.empty()) {
      net->CountValues(static_cast<int64_t>(mine.size()));
      if (!net->SendToParent(
              v, static_cast<int64_t>(mine.size()) * wire.value_bits)) {
        mine.clear();  // lost uplink: the parent never sees this subtree
      }
    }
  }
  std::vector<int64_t>& result = inbox[static_cast<size_t>(net->root())];
  std::sort(result.begin(), result.end());
  return result;
}

std::vector<int64_t> TopFConvergecast(Network* net,
                                      const std::vector<int64_t>& values,
                                      int64_t lo, int64_t hi, int64_t f,
                                      bool largest, const WireFormat& wire) {
  WSNQ_CHECK_GE(f, 1);
  const SpanningTree& tree = net->tree();
  std::vector<std::vector<int64_t>> inbox(
      static_cast<size_t>(net->num_vertices()));
  net->NoteConvergecast();
  for (int v : tree.post_order) {
    std::vector<int64_t>& mine = inbox[static_cast<size_t>(v)];
    if (!net->is_root(v)) {
      const int64_t value = values[static_cast<size_t>(v)];
      if (value >= lo && value <= hi) mine.push_back(value);
    }
    for (int child : tree.children[static_cast<size_t>(v)]) {
      auto& theirs = inbox[static_cast<size_t>(child)];
      mine.insert(mine.end(), theirs.begin(), theirs.end());
      theirs.clear();
    }
    // Keep the f most extreme values plus duplicates of the f-th extreme.
    std::sort(mine.begin(), mine.end());
    if (largest) std::reverse(mine.begin(), mine.end());
    if (static_cast<int64_t>(mine.size()) > f) {
      const int64_t cutoff = mine[static_cast<size_t>(f - 1)];
      size_t keep = static_cast<size_t>(f);
      while (keep < mine.size() && mine[keep] == cutoff) ++keep;
      mine.resize(keep);
    }
    if (!net->is_root(v) && !mine.empty()) {
      net->CountValues(static_cast<int64_t>(mine.size()));
      if (!net->SendToParent(
              v, static_cast<int64_t>(mine.size()) * wire.value_bits)) {
        mine.clear();  // lost uplink: the parent never sees this subtree
      }
    }
  }
  std::vector<int64_t>& result = inbox[static_cast<size_t>(net->root())];
  std::sort(result.begin(), result.end());
  return result;
}

RootCounts CountsFromCollection(const std::vector<int64_t>& sorted_collection,
                                int64_t threshold, int64_t population) {
  WSNQ_DCHECK(
      std::is_sorted(sorted_collection.begin(), sorted_collection.end()));
  RootCounts counts;
  for (int64_t v : sorted_collection) {
    if (v < threshold) {
      ++counts.l;
    } else if (v == threshold) {
      ++counts.e;
    } else {
      break;
    }
  }
  counts.g = population - counts.l - counts.e;
  return counts;
}

}  // namespace wsnq
