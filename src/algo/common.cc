#include "algo/common.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <functional>

#include "util/check.h"

namespace wsnq {
namespace {

/// WSNQ_SOA=0 disables buffer reuse (A/B pin for the bench harness); any
/// other value — or an unset variable — keeps the struct-of-arrays reuse.
bool SoaReuseEnabled() {
  const char* env = std::getenv("WSNQ_SOA");
  return env == nullptr || std::strcmp(env, "0") != 0;
}

/// Releases a buffer's heap storage (the WSNQ_SOA=0 allocate-per-wave pin).
template <typename T>
void ReleaseBuffer(std::vector<T>* buffer) {
  std::vector<T>().swap(*buffer);
}

}  // namespace

void ValidationAgg::Merge(const ValidationAgg& other) {
  into_lt += other.into_lt;
  outof_lt += other.outof_lt;
  into_gt += other.into_gt;
  outof_gt += other.outof_gt;
  if (other.has_hint) {
    if (!has_hint) {
      has_hint = true;
      min_changed = other.min_changed;
      max_changed = other.max_changed;
    } else {
      min_changed = std::min(min_changed, other.min_changed);
      max_changed = std::max(max_changed, other.max_changed);
    }
  }
}

void ValidationAgg::AddTransition(Region from, Region to, int64_t value) {
  if (from == to) return;
  if (to == Region::kLt) ++into_lt;
  if (from == Region::kLt) ++outof_lt;
  if (to == Region::kGt) ++into_gt;
  if (from == Region::kGt) ++outof_gt;
  if (!has_hint) {
    has_hint = true;
    min_changed = value;
    max_changed = value;
  } else {
    min_changed = std::min(min_changed, value);
    max_changed = std::max(max_changed, value);
  }
}

WaveWorkspace::WaveWorkspace() : reuse_(SoaReuseEnabled()) {}

std::vector<ValidationAgg>& WaveWorkspace::PrepareAggRows(size_t n,
                                                          size_t rows) {
  if (!reuse_) ReleaseBuffer(&agg_);
  agg_.assign(n * rows, ValidationAgg{});
  return agg_;
}

std::vector<std::vector<int64_t>>& WaveWorkspace::PrepareSets(size_t n) {
  if (!reuse_) ReleaseBuffer(&sets_);
  if (sets_.size() < n) sets_.resize(n);
  for (size_t i = 0; i < n; ++i) sets_[i].clear();
  return sets_;
}

std::vector<std::vector<int64_t>>& WaveWorkspace::PrepareWindows(size_t n) {
  if (!reuse_) ReleaseBuffer(&windows_);
  if (windows_.size() < n) windows_.resize(n);
  for (size_t i = 0; i < n; ++i) windows_[i].clear();
  return windows_;
}

std::vector<std::vector<std::pair<int, int64_t>>>&
WaveWorkspace::PrepareDeltas(size_t n) {
  if (!reuse_) ReleaseBuffer(&deltas_);
  if (deltas_.size() < n) deltas_.resize(n);
  for (size_t i = 0; i < n; ++i) deltas_[i].clear();
  return deltas_;
}

void WaveWorkspace::PrepareHist(size_t n, size_t buckets) {
  if (!reuse_) {
    ReleaseBuffer(&hist_);
    ReleaseBuffer(&hist_total_);
    ReleaseBuffer(&hist_epoch_);
    hist_wave_ = 0;
  }
  if (hist_.size() < n * buckets) hist_.resize(n * buckets);
  if (hist_epoch_.size() < n || hist_buckets_ != buckets) {
    // Row stride changed: existing epochs refer to other row offsets.
    hist_epoch_.assign(std::max(hist_epoch_.size(), n), 0);
    hist_wave_ = 0;
  }
  hist_buckets_ = buckets;
  hist_total_.assign(n, 0);
  ++hist_wave_;
}

int64_t* WaveWorkspace::HistRow(int v) {
  const size_t row = static_cast<size_t>(v);
  int64_t* data = hist_.data() + row * hist_buckets_;
  if (hist_epoch_[row] != hist_wave_) {
    std::fill(data, data + hist_buckets_, 0);
    hist_epoch_[row] = hist_wave_;
  }
  return data;
}

namespace {

/// Ops for CollectKSmallest: rows hold each subtree's sorted k-smallest
/// multiset (with k-th ties); a node always uplinks its row.
struct CollectKOps {
  Network* net;
  const std::vector<int64_t>& values;
  int64_t k;
  const WireFormat& wire;
  std::vector<std::vector<int64_t>>& inbox;

  WaveSend Process(int v, WaveLane& lane) {
    std::vector<int64_t>& mine = inbox[static_cast<size_t>(v)];
    if (!net->is_root(v)) mine.push_back(values[static_cast<size_t>(v)]);
    for (int child : net->tree().children[static_cast<size_t>(v)]) {
      // Truncate to the k smallest (plus k-th ties) after every child so
      // the running list never exceeds k + ties (see MergeTruncatedInto).
      MergeTruncatedInto(&mine, &inbox[static_cast<size_t>(child)],
                         &lane.scratch, k, std::less<int64_t>());
    }
    TruncateWithTies(&mine, k);
    WaveSend send;
    send.payload_bits = static_cast<int64_t>(mine.size()) * wire.value_bits;
    send.value_count = static_cast<int64_t>(mine.size());
    return send;
  }
  void OnLost(int v) {
    inbox[static_cast<size_t>(v)].clear();  // parent never sees the subtree
  }
};

/// Ops for RangeValuesConvergecast: rows hold the sorted in-range values of
/// each subtree; a node uplinks iff its row is non-empty.
struct RangeValuesOps {
  Network* net;
  const std::vector<int64_t>& values;
  int64_t lo;
  int64_t hi;
  const WireFormat& wire;
  std::vector<std::vector<int64_t>>& inbox;

  WaveSend Process(int v, WaveLane& lane) {
    std::vector<int64_t>& mine = inbox[static_cast<size_t>(v)];
    if (!net->is_root(v)) {
      const int64_t value = values[static_cast<size_t>(v)];
      if (value >= lo && value <= hi) mine.push_back(value);
    }
    for (int child : net->tree().children[static_cast<size_t>(v)]) {
      MergeSortedInto(&mine, &inbox[static_cast<size_t>(child)],
                      &lane.scratch, std::less<int64_t>());
    }
    WaveSend send;
    if (!mine.empty()) {
      send.payload_bits = static_cast<int64_t>(mine.size()) * wire.value_bits;
      send.value_count = static_cast<int64_t>(mine.size());
    }
    return send;
  }
  void OnLost(int v) { inbox[static_cast<size_t>(v)].clear(); }
};

/// Ops for TopFConvergecast: rows ordered most-extreme-first (descending
/// when collecting the largest), truncated to f plus ties of the f-th.
struct TopFOps {
  Network* net;
  const std::vector<int64_t>& values;
  int64_t lo;
  int64_t hi;
  int64_t f;
  bool largest;
  const WireFormat& wire;
  std::vector<std::vector<int64_t>>& inbox;

  WaveSend Process(int v, WaveLane& lane) {
    std::vector<int64_t>& mine = inbox[static_cast<size_t>(v)];
    if (!net->is_root(v)) {
      const int64_t value = values[static_cast<size_t>(v)];
      if (value >= lo && value <= hi) mine.push_back(value);
    }
    for (int child : net->tree().children[static_cast<size_t>(v)]) {
      // Per-child truncation to the f most extreme (plus f-th ties); see
      // MergeTruncatedInto for why this cannot change the final list.
      if (largest) {
        MergeTruncatedInto(&mine, &inbox[static_cast<size_t>(child)],
                           &lane.scratch, f, std::greater<int64_t>());
      } else {
        MergeTruncatedInto(&mine, &inbox[static_cast<size_t>(child)],
                           &lane.scratch, f, std::less<int64_t>());
      }
    }
    TruncateWithTies(&mine, f);
    WaveSend send;
    if (!mine.empty()) {
      send.payload_bits = static_cast<int64_t>(mine.size()) * wire.value_bits;
      send.value_count = static_cast<int64_t>(mine.size());
    }
    return send;
  }
  void OnLost(int v) { inbox[static_cast<size_t>(v)].clear(); }
};

}  // namespace

std::vector<int64_t> CollectKSmallest(Network* net,
                                      const std::vector<int64_t>& values,
                                      int64_t k, const WireFormat& wire,
                                      WaveWorkspace* ws) {
  WSNQ_CHECK_GE(k, 1);
  const size_t n = static_cast<size_t>(net->num_vertices());
  WSNQ_CHECK_EQ(values.size(), n);
  WaveWorkspace fallback;
  if (ws == nullptr) ws = &fallback;
  std::vector<std::vector<int64_t>>& inbox = ws->PrepareSets(n);
  CollectKOps ops{net, values, k, wire, inbox};
  RunConvergecastWave(net, ops);
  const std::vector<int64_t>& result = inbox[static_cast<size_t>(net->root())];
  WSNQ_DCHECK(std::is_sorted(result.begin(), result.end()));
  if (!net->lossy()) {
    // Lossless collection is complete up to rank k.
    WSNQ_DCHECK_GE(static_cast<int64_t>(result.size()),
                   std::min<int64_t>(k, net->num_sensors()));
  }
  return result;
}

std::vector<int64_t> RangeValuesConvergecast(
    Network* net, const std::vector<int64_t>& values, int64_t lo, int64_t hi,
    const WireFormat& wire, WaveWorkspace* ws) {
  const size_t n = static_cast<size_t>(net->num_vertices());
  WaveWorkspace fallback;
  if (ws == nullptr) ws = &fallback;
  std::vector<std::vector<int64_t>>& inbox = ws->PrepareSets(n);
  RangeValuesOps ops{net, values, lo, hi, wire, inbox};
  RunConvergecastWave(net, ops);
  std::vector<int64_t> result = inbox[static_cast<size_t>(net->root())];
  WSNQ_DCHECK(std::is_sorted(result.begin(), result.end()));
  return result;
}

std::vector<int64_t> TopFConvergecast(Network* net,
                                      const std::vector<int64_t>& values,
                                      int64_t lo, int64_t hi, int64_t f,
                                      bool largest, const WireFormat& wire,
                                      WaveWorkspace* ws) {
  WSNQ_CHECK_GE(f, 1);
  const size_t n = static_cast<size_t>(net->num_vertices());
  WaveWorkspace fallback;
  if (ws == nullptr) ws = &fallback;
  std::vector<std::vector<int64_t>>& inbox = ws->PrepareSets(n);
  TopFOps ops{net, values, lo, hi, f, largest, wire, inbox};
  RunConvergecastWave(net, ops);
  std::vector<int64_t> result = inbox[static_cast<size_t>(net->root())];
  std::sort(result.begin(), result.end());
  return result;
}

RootCounts CountsFromCollection(const std::vector<int64_t>& sorted_collection,
                                int64_t threshold, int64_t population) {
  WSNQ_DCHECK(
      std::is_sorted(sorted_collection.begin(), sorted_collection.end()));
  RootCounts counts;
  for (int64_t v : sorted_collection) {
    if (v < threshold) {
      ++counts.l;
    } else if (v == threshold) {
      ++counts.e;
    } else {
      break;
    }
  }
  counts.g = population - counts.l - counts.e;
  return counts;
}

}  // namespace wsnq
