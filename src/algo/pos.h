// POS (Cox et al. [9], reviewed in §3.2): the continuous binary-search
// baseline. The most recent quantile is the network-wide filter. Every
// round starts with a validation convergecast of region-movement counters;
// if the root's (l, e, g) no longer certify the filter, the root binary-
// searches the refinement interval, broadcasting midpoints and receiving
// movement counters, until a midpoint is certified.
//
// Both improvements described in §3.2 / §5.1.6 are implemented:
//  * hints — validation packets carry the min and max of all values that
//    changed their region, which bound the refinement interval far better
//    than +-infinity;
//  * direct sends — once the number of candidate values in the refinement
//    interval fits in a single packet, the root requests them verbatim
//    (which then requires a final filter broadcast).

#ifndef WSNQ_ALGO_POS_H_
#define WSNQ_ALGO_POS_H_

#include <cstdint>
#include <vector>

#include "algo/common.h"
#include "algo/protocol.h"

namespace wsnq {

/// Continuous binary-search quantile protocol.
class PosProtocol : public QuantileProtocol {
 public:
  struct Options {
    /// Carry (min, max)-of-changed-values hints in validation packets.
    bool use_hints = true;
    /// Request candidate values directly when they fit in one packet.
    bool direct_send = true;
  };

  /// Continuously tracks the k-th smallest (1-based) value over the integer
  /// universe [range_min, range_max].
  PosProtocol(int64_t k, int64_t range_min, int64_t range_max,
              const WireFormat& wire, const Options& options);

  const char* name() const override { return "POS"; }
  void RunRound(Network* net, const std::vector<int64_t>& values_by_vertex,
                int64_t round) override;
  int64_t quantile() const override { return quantile_; }
  RootCounts root_counts() const override { return counts_; }
  int64_t refinements_last_round() const override { return refinements_; }

 private:
  void Initialize(Network* net, const std::vector<int64_t>& values);
  void Refine(Network* net, const std::vector<int64_t>& values,
              const ValidationAgg& validation);
  /// Requests all values in [lo, hi] directly and finishes the round.
  void DirectRetrieve(Network* net, const std::vector<int64_t>& values,
                      int64_t lo, int64_t hi, int64_t below_lo);

  int64_t k_;
  int64_t range_min_;
  int64_t range_max_;
  WireFormat wire_;
  Options options_;

  int64_t quantile_ = 0;
  /// The threshold filter every node currently holds (kept consistent by
  /// the protocol's own broadcasts).
  int64_t filter_ = 0;
  RootCounts counts_;
  std::vector<int64_t> prev_values_;
  /// Network::tree_epoch() the state was initialized under; a mismatch
  /// (fault-driven tree repair) forces re-initialization.
  int64_t tree_epoch_ = 0;
  int64_t refinements_ = 0;
  WaveWorkspace ws_;
};

}  // namespace wsnq

#endif  // WSNQ_ALGO_POS_H_
