// TAG baseline (Madden et al. [17], as configured in §5.1.6): every round
// all relevant measurements are collected at the root and the quantile is
// computed centrally. The paper's optimization is applied: the root
// broadcasts k during query dissemination (round 0), so intermediate nodes
// forward only the k smallest values of their subtree (plus ties of the
// k-th, so the root's answer and bookkeeping stay exact).

#ifndef WSNQ_ALGO_TAG_H_
#define WSNQ_ALGO_TAG_H_

#include <cstdint>
#include <vector>

#include "algo/common.h"
#include "algo/protocol.h"

namespace wsnq {

/// Centralized (k-limited) collection, repeated every round.
class TagProtocol : public QuantileProtocol {
 public:
  /// Queries the `k`-th smallest (1-based) measurement every round.
  TagProtocol(int64_t k, const WireFormat& wire) : k_(k), wire_(wire) {}

  const char* name() const override { return "TAG"; }

  void RunRound(Network* net, const std::vector<int64_t>& values_by_vertex,
                int64_t round) override;

  int64_t quantile() const override { return quantile_; }
  RootCounts root_counts() const override { return counts_; }

 private:
  int64_t k_;
  WireFormat wire_;
  int64_t quantile_ = 0;
  RootCounts counts_;
  WaveWorkspace ws_;
};

}  // namespace wsnq

#endif  // WSNQ_ALGO_TAG_H_
