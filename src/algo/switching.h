// Adaptive algorithm switching (§4.2: "Due to the similar structure of POS,
// HBC and IQ it is possible to switch between these approaches without
// reinitializing the network and always use the best algorithm within a
// given environment, however we leave heuristics to select the best
// solution for future research"). This module implements that future work.
//
// The switcher runs IQ while the quantile is temporally stable and HBC when
// it moves fast, following the paper's own conclusion ("a heuristic
// algorithm should be employed when there is some temporal correlation ...
// the optimized b-ary search is more useful if the temporal correlation
// between consecutive quantiles is low"). The policy uses root-side
// knowledge only: the mean absolute quantile delta over a sliding window,
// compared against the width a b-ary search would resolve in one histogram
// exchange. A switch costs one announcement flood (mode + window bounds)
// and reuses the incumbent's filter, counts, and node-side state.

#ifndef WSNQ_ALGO_SWITCHING_H_
#define WSNQ_ALGO_SWITCHING_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "algo/common.h"
#include "algo/hbc.h"
#include "algo/iq.h"
#include "algo/protocol.h"

namespace wsnq {

/// IQ/HBC hybrid with a temporal-correlation switching policy.
class SwitchingProtocol : public QuantileProtocol {
 public:
  struct Options {
    /// Rounds between policy evaluations.
    int evaluate_every = 10;
    /// Sliding window (rounds) of quantile deltas driving the policy.
    int window = 10;
    /// Switch to HBC when the mean absolute delta exceeds this multiple of
    /// the universe fraction a single histogram drill level resolves
    /// (tau / b^2); hysteresis keeps flapping down. Conservative defaults:
    /// in the reproduced settings IQ wins whenever any temporal
    /// correlation remains, so HBC is insurance against near-chaotic
    /// quantiles, not a frequent destination.
    double up_factor = 8.0;
    double down_factor = 4.0;
    IqProtocol::Options iq;
    HbcProtocol::Options hbc;
  };

  SwitchingProtocol(int64_t k, int64_t range_min, int64_t range_max,
                    const WireFormat& wire, const Options& options);

  const char* name() const override { return "SWITCH"; }
  void RunRound(Network* net, const std::vector<int64_t>& values_by_vertex,
                int64_t round) override;
  int64_t quantile() const override { return active_->quantile(); }
  RootCounts root_counts() const override { return active_->root_counts(); }
  int64_t refinements_last_round() const override {
    return active_->refinements_last_round();
  }

  /// True while IQ is the active algorithm.
  bool iq_active() const { return active_ == iq_.get(); }
  /// Number of switches performed so far.
  int switches() const { return switches_; }

 private:
  void MaybeSwitch(Network* net);

  int64_t k_;
  int64_t range_min_;
  int64_t range_max_;
  WireFormat wire_;
  Options options_;

  std::unique_ptr<IqProtocol> iq_;
  std::unique_ptr<HbcProtocol> hbc_;
  QuantileProtocol* active_ = nullptr;

  std::deque<int64_t> deltas_;
  int64_t prev_quantile_ = 0;
  std::vector<int64_t> prev_values_;
  int switches_ = 0;
};

}  // namespace wsnq

#endif  // WSNQ_ALGO_SWITCHING_H_
