// The common interface of all continuous quantile protocols.
//
// A protocol is driven round by round. Round 0 is the initialization round
// (§3.2 / §4.2.1): the first quantile is computed with a collection or
// histogram query and the initial filter state is disseminated. Every later
// round runs the protocol's validation / refinement machinery. After each
// round the protocol must report the *exact* k-th smallest measurement —
// all algorithms in the paper are exact.

#ifndef WSNQ_ALGO_PROTOCOL_H_
#define WSNQ_ALGO_PROTOCOL_H_

#include <cstdint>
#include <vector>

#include "net/network.h"

namespace wsnq {

/// The root's bookkeeping (l, e, g) of §3.2: how many measurements are less
/// than, equal to, and greater than the current quantile value.
struct RootCounts {
  int64_t l = 0;
  int64_t e = 0;
  int64_t g = 0;
};

/// One continuous quantile query execution over a fixed network.
class QuantileProtocol {
 public:
  virtual ~QuantileProtocol() = default;

  /// Short identifier used in reports ("POS", "HBC", "IQ", ...).
  virtual const char* name() const = 0;

  /// Executes round `round` (0, 1, 2, ...) against the current measurements.
  /// `values_by_vertex` has one entry per network vertex; the root's entry
  /// is ignored (the root takes no measurements, §2). Rounds must be fed in
  /// order starting at 0. All communication must go through `net` so energy
  /// and message accounting stays truthful.
  virtual void RunRound(Network* net,
                        const std::vector<int64_t>& values_by_vertex,
                        int64_t round) = 0;

  /// The exact quantile after the most recent round.
  virtual int64_t quantile() const = 0;

  /// The root's (l, e, g) state relative to its current filter; used by the
  /// test suite to verify protocol bookkeeping against the oracle.
  virtual RootCounts root_counts() const = 0;

  /// Number of refinement convergecasts the protocol ran in the most recent
  /// round (0 when validation alone settled the quantile). int64_t to match
  /// the other count metrics (core/metrics.h RoundRecord).
  virtual int64_t refinements_last_round() const { return 0; }
};

}  // namespace wsnq

#endif  // WSNQ_ALGO_PROTOCOL_H_
