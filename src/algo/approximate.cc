#include "algo/approximate.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace wsnq {
namespace {

int UniverseHeight(int64_t range_min, int64_t range_max) {
  const int64_t span = range_max - range_min + 1;
  int height = 1;
  while ((int64_t{1} << height) < span) ++height;
  return height;
}

uint64_t Mix(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

QdigestProtocol::QdigestProtocol(int64_t k, int64_t range_min,
                                 int64_t range_max, const WireFormat& wire,
                                 const Options& options)
    : k_(k),
      range_min_(range_min),
      range_max_(range_max),
      height_(UniverseHeight(range_min, range_max)),
      wire_(wire),
      options_(options) {
  WSNQ_CHECK_GE(k, 1);
}

void QdigestProtocol::RunRound(Network* net,
                               const std::vector<int64_t>& values_by_vertex,
                               int64_t round) {
  if (round == 0) net->FloodFromRoot(wire_.counter_bits);

  const SpanningTree& tree = net->tree();
  std::vector<QDigest> inbox(
      static_cast<size_t>(net->num_vertices()),
      QDigest(height_, options_.compression));
  net->NoteConvergecast();
  for (int v : tree.post_order) {
    QDigest& digest = inbox[static_cast<size_t>(v)];
    if (!net->is_root(v)) {
      digest.Add(values_by_vertex[static_cast<size_t>(v)] - range_min_);
    }
    for (int child : tree.children[static_cast<size_t>(v)]) {
      digest.Merge(inbox[static_cast<size_t>(child)]);
    }
    digest.Compress();
    if (!net->is_root(v)) {
      if (!net->SendToParent(v, digest.EncodedBits(wire_))) {
        digest = QDigest(height_, options_.compression);  // lost uplink
      }
    }
  }
  const QDigest& root_digest = inbox[static_cast<size_t>(net->root())];
  if (root_digest.total() == 0) return;  // total loss; keep the old answer
  quantile_ = range_min_ + root_digest.QueryQuantile(k_);
  last_error_bound_ = root_digest.ErrorBound();
  counts_.l = root_digest.EstimateRank(quantile_ - range_min_ - 1);
  counts_.e = root_digest.EstimateRank(quantile_ - range_min_) - counts_.l;
  counts_.g = net->num_sensors() - counts_.l - counts_.e;
}

GkProtocol::GkProtocol(int64_t k, int64_t /*range_min*/,
                       int64_t /*range_max*/, const WireFormat& wire,
                       const Options& options)
    : k_(k), wire_(wire), options_(options) {
  WSNQ_CHECK_GE(k, 1);
}

void GkProtocol::RunRound(Network* net,
                          const std::vector<int64_t>& values_by_vertex,
                          int64_t round) {
  if (round == 0) net->FloodFromRoot(wire_.counter_bits);

  const SpanningTree& tree = net->tree();
  std::vector<GkSummary> inbox(
      static_cast<size_t>(net->num_vertices()),
      GkSummary(options_.epsilon));
  net->NoteConvergecast();
  for (int v : tree.post_order) {
    GkSummary& summary = inbox[static_cast<size_t>(v)];
    if (!net->is_root(v)) {
      summary.Add(values_by_vertex[static_cast<size_t>(v)]);
    }
    for (int child : tree.children[static_cast<size_t>(v)]) {
      summary.Merge(inbox[static_cast<size_t>(child)]);
    }
    if (!net->is_root(v)) {
      if (!net->SendToParent(v, summary.EncodedBits(wire_))) {
        summary = GkSummary(options_.epsilon);
      }
    }
  }
  const GkSummary& root_summary = inbox[static_cast<size_t>(net->root())];
  if (root_summary.total() == 0) return;
  quantile_ = root_summary.QueryQuantile(k_);
  counts_.l = k_ - 1;  // best effort: the summary's band center
  counts_.e = 1;
  counts_.g = net->num_sensors() - k_;
}

SamplingProtocol::SamplingProtocol(int64_t k, int64_t range_min,
                                   int64_t range_max, const WireFormat& wire,
                                   const Options& options)
    : k_(k),
      range_min_(range_min),
      range_max_(range_max),
      wire_(wire),
      options_(options) {
  WSNQ_CHECK_GE(k, 1);
  WSNQ_CHECK_GT(options.probability, 0.0);
  WSNQ_CHECK_LE(options.probability, 1.0);
}

void SamplingProtocol::RunRound(Network* net,
                                const std::vector<int64_t>& values_by_vertex,
                                int64_t round) {
  if (round == 0) net->FloodFromRoot(wire_.counter_bits);

  const SpanningTree& tree = net->tree();
  std::vector<std::vector<int64_t>> inbox(
      static_cast<size_t>(net->num_vertices()));
  net->NoteConvergecast();
  for (int v : tree.post_order) {
    std::vector<int64_t>& sample = inbox[static_cast<size_t>(v)];
    if (!net->is_root(v)) {
      const double u =
          static_cast<double>(
              Mix(options_.seed ^ (static_cast<uint64_t>(v) << 20) ^
                  static_cast<uint64_t>(round)) >>
              11) *
          0x1.0p-53;
      if (u < options_.probability) {
        sample.push_back(values_by_vertex[static_cast<size_t>(v)]);
      }
    }
    for (int child : tree.children[static_cast<size_t>(v)]) {
      auto& theirs = inbox[static_cast<size_t>(child)];
      sample.insert(sample.end(), theirs.begin(), theirs.end());
      theirs.clear();
    }
    if (!net->is_root(v) && !sample.empty()) {
      net->CountValues(static_cast<int64_t>(sample.size()));
      if (!net->SendToParent(
              v, static_cast<int64_t>(sample.size()) * wire_.value_bits)) {
        sample.clear();
      }
    }
  }
  std::vector<int64_t>& sample = inbox[static_cast<size_t>(net->root())];
  if (sample.empty()) return;
  std::sort(sample.begin(), sample.end());
  // Rank k among |N| maps to rank ~ k * |sample| / |N| in the sample.
  const int64_t sample_rank = std::clamp<int64_t>(
      std::llround(static_cast<double>(k_) *
                   static_cast<double>(sample.size()) /
                   static_cast<double>(net->num_sensors())),
      1, static_cast<int64_t>(sample.size()));
  quantile_ = sample[static_cast<size_t>(sample_rank - 1)];
  counts_.l = k_ - 1;
  counts_.e = 1;
  counts_.g = net->num_sensors() - k_;
}

}  // namespace wsnq
