// Snapshot b-ary histogram search — the authors' prior cost-model work
// ([21], summarized in §4.1): the root repeatedly broadcasts a refinement
// interval, receives an aggregated b-bucket histogram of it, and descends
// into the bucket containing the k-th value until the bucket is a single
// integer (or few enough candidates remain to request them verbatim).
//
// The drill is exposed as a reusable primitive: HBC uses it for its
// initialization round and for every per-round refinement; LCLL uses it to
// resolve boundary regions and over-wide buckets. A thin QuantileProtocol
// wrapper makes the snapshot algorithm runnable stand-alone (it simply
// re-runs the search every round).

#ifndef WSNQ_ALGO_SNAPSHOT_BARY_H_
#define WSNQ_ALGO_SNAPSHOT_BARY_H_

#include <cstdint>
#include <vector>

#include "algo/common.h"
#include "algo/protocol.h"

namespace wsnq {

/// Outcome of a b-ary histogram drill.
struct DrillResult {
  /// The exact k-th smallest value.
  int64_t quantile = 0;
  /// Exact (l, e, g) of `quantile` over the whole population.
  RootCounts counts;
  /// The last interval broadcast as a refinement request — every node knows
  /// it, which is what HBC's §4.1.2 variant exploits as its filter.
  int64_t last_lb = 0;
  int64_t last_ub = 0;
  /// Exact number of measurements below / inside the last interval.
  int64_t below_last = 0;
  int64_t in_last = 0;
  /// Request/response exchanges performed.
  int rounds = 0;
};

/// Options of a drill.
struct DrillOptions {
  /// Histogram buckets per refinement (b).
  int buckets = 8;
  /// If > 0, request candidate values directly once at most this many
  /// remain in the chosen bucket ("sending values directly if the
  /// refinement interval is nearly empty", §4.1.1).
  int64_t direct_capacity = 0;
};

/// Finds the k-th smallest overall value, known to lie in [lb, ub) with
/// exactly `below_lb` values smaller than lb. Floods every request and
/// aggregates every histogram/value response through `net`.
///
/// HBC's downward refinement knows the count *below ub* (it equals the
/// root's l) but not the count below the hinted lb; pass below_lb = -1 and
/// the count below ub via `less_than_ub`, and the drill derives below_lb
/// from its first histogram (§4.1.1).
///
/// Preconditions: lb < ub; the k-th value is in [lb, ub); below_lb < k when
/// known, else less_than_ub >= k... (the count below ub must cover rank k).
DrillResult BAryDrill(Network* net, const std::vector<int64_t>& values,
                      int64_t lb, int64_t ub, int64_t below_lb, int64_t k,
                      const DrillOptions& options, const WireFormat& wire,
                      int64_t less_than_ub = -1, WaveWorkspace* ws = nullptr);

/// Stand-alone snapshot protocol: one full b-ary search per round.
class SnapshotBaryProtocol : public QuantileProtocol {
 public:
  SnapshotBaryProtocol(int64_t k, int64_t range_min, int64_t range_max,
                       const WireFormat& wire, const DrillOptions& options)
      : k_(k),
        range_min_(range_min),
        range_max_(range_max),
        wire_(wire),
        options_(options) {}

  const char* name() const override { return "SNAPSHOT"; }
  void RunRound(Network* net, const std::vector<int64_t>& values_by_vertex,
                int64_t round) override;
  int64_t quantile() const override { return result_.quantile; }
  RootCounts root_counts() const override { return result_.counts; }
  int64_t refinements_last_round() const override { return result_.rounds; }

 private:
  int64_t k_;
  int64_t range_min_;
  int64_t range_max_;
  WireFormat wire_;
  DrillOptions options_;
  DrillResult result_;
  WaveWorkspace ws_;
};

}  // namespace wsnq

#endif  // WSNQ_ALGO_SNAPSHOT_BARY_H_
