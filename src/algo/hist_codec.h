// Equi-width integer histograms and their wire encoding, shared by the
// histogram-based protocols (snapshot b-ary search, HBC, LCLL).
//
// A histogram partitions the half-open integer interval [lb, ub) into at
// most `b` buckets of equal width ceil((ub - lb) / b); the last bucket may
// be narrower. On the wire a histogram is either dense (b counts) or
// compressed by dropping empty buckets ((index, count) pairs, §4.1.1's
// "compressing histograms by removing empty buckets"); EncodedBits picks
// the cheaper form, as a real implementation would.

#ifndef WSNQ_ALGO_HIST_CODEC_H_
#define WSNQ_ALGO_HIST_CODEC_H_

#include <cstdint>
#include <vector>

#include "algo/common.h"

namespace wsnq {

/// Bucket layout over [lb, ub) with at most `max_buckets` buckets.
class BucketLayout {
 public:
  /// Precondition: lb < ub, max_buckets >= 1.
  BucketLayout(int64_t lb, int64_t ub, int max_buckets);

  int64_t lb() const { return lb_; }
  int64_t ub() const { return ub_; }
  int64_t width() const { return width_; }
  /// Actual number of buckets (<= max_buckets).
  int num_buckets() const { return num_buckets_; }

  /// True iff `value` falls into [lb, ub).
  bool Contains(int64_t value) const { return value >= lb_ && value < ub_; }

  /// Bucket index of `value`. Precondition: Contains(value). Power-of-two
  /// widths (the common case: b-ary drills over power-of-two universes keep
  /// halving into power-of-two widths) resolve with a shift instead of a
  /// 64-bit division — this runs once per in-range sensor per histogram
  /// wave, so the division is measurably hot.
  int BucketOf(int64_t value) const {
    WSNQ_DCHECK(Contains(value));
    const int64_t offset = value - lb_;
    const int bucket = static_cast<int>(
        width_shift_ >= 0 ? offset >> width_shift_ : offset / width_);
    WSNQ_DCHECK_GE(bucket, 0);
    WSNQ_DCHECK_LT(bucket, num_buckets_);
    return bucket;
  }

  /// Lower bound (inclusive) of bucket `i`.
  int64_t BucketLb(int i) const { return lb_ + static_cast<int64_t>(i) * width_; }
  /// Upper bound (exclusive) of bucket `i`, clamped to ub.
  int64_t BucketUb(int i) const;

 private:
  int64_t lb_;
  int64_t ub_;
  int64_t width_;
  /// log2(width_) when width_ is a power of two, else -1 (see BucketOf).
  int width_shift_;
  int num_buckets_;
};

/// Sparse histogram counts over a BucketLayout, mergeable up the tree.
class SparseHistogram {
 public:
  explicit SparseHistogram(int num_buckets)
      : counts_(static_cast<size_t>(num_buckets), 0) {}

  void Add(int bucket, int64_t count = 1) {
    counts_[static_cast<size_t>(bucket)] += count;
  }
  void Merge(const SparseHistogram& other);

  int64_t count(int bucket) const {
    return counts_[static_cast<size_t>(bucket)];
  }
  int num_buckets() const { return static_cast<int>(counts_.size()); }
  int NonEmpty() const;
  int64_t Total() const;
  bool empty() const { return Total() == 0; }

  /// Wire size: the cheaper of the dense and compressed encodings.
  int64_t EncodedBits(const WireFormat& wire) const;

 private:
  std::vector<int64_t> counts_;
};

/// Aggregates a histogram of all measurements inside `layout`'s interval at
/// the root: every node buckets its own value (if in range), merges its
/// children's histograms, and transmits iff the merged histogram is
/// non-empty, paying the (possibly compressed) encoding size. Bucket rows
/// live in `ws`'s flat histogram arena (lazily zeroed; zero-total subtrees
/// are skipped entirely), so the wave is a linear sweep over post order.
SparseHistogram HistogramConvergecast(Network* net,
                                      const std::vector<int64_t>& values,
                                      const BucketLayout& layout,
                                      const WireFormat& wire,
                                      WaveWorkspace* ws = nullptr);

}  // namespace wsnq

#endif  // WSNQ_ALGO_HIST_CODEC_H_
