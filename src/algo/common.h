// Shared protocol building blocks: wire sizes, the lt/eq/gt region algebra
// of POS-style filters, validation counter aggregation, hints, and the
// TAG-style k-limited collection used for initialization.

#ifndef WSNQ_ALGO_COMMON_H_
#define WSNQ_ALGO_COMMON_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "algo/protocol.h"
#include "net/network.h"

namespace wsnq {

/// Field sizes used to compute message payloads (Table 1's s_* symbols).
struct WireFormat {
  /// s_v: one measurement [bits] ("two-byte measurements", §5.1.6).
  int64_t value_bits = 16;
  /// One movement counter of a validation packet [bits].
  int64_t counter_bits = 16;
  /// s_b: one histogram bucket count [bits].
  int64_t bucket_count_bits = 16;
  /// Bucket index used by compressed (sparse) histograms [bits].
  int64_t bucket_index_bits = 8;
  /// One interval bound in a refinement request [bits].
  int64_t bound_bits = 16;
  /// An f_1/f_2-style "number of values requested" field [bits].
  int64_t fcount_bits = 16;
};

/// Position of a value relative to a single threshold filter.
enum class Region { kLt, kEq, kGt };

inline Region ClassifyThreshold(int64_t value, int64_t threshold) {
  if (value < threshold) return Region::kLt;
  if (value > threshold) return Region::kGt;
  return Region::kEq;
}

/// Aggregated content of a POS validation / refinement packet: the four
/// movement counters of §3.2 plus the min/max hint over all values that
/// changed their region.
struct ValidationAgg {
  int64_t into_lt = 0;
  int64_t outof_lt = 0;
  int64_t into_gt = 0;
  int64_t outof_gt = 0;
  bool has_hint = false;
  int64_t min_changed = 0;
  int64_t max_changed = 0;

  bool empty() const {
    return into_lt == 0 && outof_lt == 0 && into_gt == 0 && outof_gt == 0 &&
           !has_hint;
  }

  /// Folds a child's aggregate into this one (TAG-style merge).
  void Merge(const ValidationAgg& other);

  /// Records one node's region transition `from` -> `to` for a value that
  /// is now `value`.
  void AddTransition(Region from, Region to, int64_t value);
};

/// Applies aggregated movement counters to root counts (l and g move by the
/// counter deltas; e is rederived from the population size).
inline void ApplyCounters(const ValidationAgg& agg, int64_t population,
                          RootCounts* counts) {
  counts->l += agg.into_lt - agg.outof_lt;
  counts->g += agg.into_gt - agg.outof_gt;
  counts->e = population - counts->l - counts->g;
}

/// Whether `counts` certify that the current filter value is the exact k-th
/// smallest: l < k <= l + e.
inline bool CountsValid(const RootCounts& counts, int64_t k) {
  return counts.l < k && counts.l + counts.e >= k;
}

/// Debug-audit helper: the root's (l, e, g) are componentwise non-negative
/// and partition the sensor population. Message loss can legitimately break
/// this, so call sites guard on `!net->lossy()`.
inline bool CountsConserved(const RootCounts& counts, int64_t population) {
  return counts.l >= 0 && counts.e >= 0 && counts.g >= 0 &&
         counts.l + counts.e + counts.g == population;
}

/// TAG-style k-limited collection (§5.1.6): every node forwards the k
/// smallest values of its subtree — plus all duplicates of the k-th
/// smallest, so the root learns the exact multiplicity of every value up to
/// rank k. Communication is accounted on `net`; returns the root's sorted
/// multiset (size >= min(k, |N|)).
std::vector<int64_t> CollectKSmallest(Network* net,
                                      const std::vector<int64_t>& values,
                                      int64_t k, const WireFormat& wire);

/// Root counts (l, e, g) of `threshold` given a collection that is complete
/// up to and including every duplicate of the k-th smallest value.
RootCounts CountsFromCollection(const std::vector<int64_t>& sorted_collection,
                                int64_t threshold, int64_t population);

/// Best-effort k-th smallest from a possibly incomplete sorted collection
/// (message loss, §6): clamps the rank into the collection and falls back
/// to `fallback` when nothing arrived at all.
inline int64_t BestEffortKth(const std::vector<int64_t>& sorted, int64_t k,
                             int64_t fallback) {
  if (sorted.empty()) return fallback;
  const int64_t idx =
      std::clamp<int64_t>(k, 1, static_cast<int64_t>(sorted.size())) - 1;
  return sorted[static_cast<size_t>(idx)];
}

/// Collects every measurement inside [lo, hi] (inclusive) at the root
/// ("request all values in the remaining interval directly", §3.2).
/// Intermediate nodes concatenate; accounting goes through `net`.
/// Returns the root's sorted multiset.
std::vector<int64_t> RangeValuesConvergecast(Network* net,
                                             const std::vector<int64_t>& values,
                                             int64_t lo, int64_t hi,
                                             const WireFormat& wire);

/// IQ-style bounded refinement response (§4.2.2): collects the `f` largest
/// (or smallest) measurements inside [lo, hi]; intermediate nodes drop
/// everything beyond the f-th extreme, but forward all duplicates of the
/// f-th extreme so the root can account for ties. Returns the root's sorted
/// (ascending) multiset.
std::vector<int64_t> TopFConvergecast(Network* net,
                                      const std::vector<int64_t>& values,
                                      int64_t lo, int64_t hi, int64_t f,
                                      bool largest, const WireFormat& wire);

/// Runs a POS-style transition convergecast. For every sensor vertex v,
/// `classify(v)` returns its (from, to) region pair; region changes are
/// folded into ValidationAgg packets that merge up the tree. A node
/// transmits iff its merged aggregate is non-empty; the packet payload is
/// four movement counters plus `hint_values` measurement fields when the
/// aggregate carries a hint. Returns the root's aggregate.
template <typename ClassifyFn>
ValidationAgg TransitionConvergecast(Network* net,
                                     const std::vector<int64_t>& values,
                                     const WireFormat& wire, int hint_values,
                                     ClassifyFn&& classify) {
  const SpanningTree& tree = net->tree();
  std::vector<ValidationAgg> inbox(
      static_cast<size_t>(net->num_vertices()));
  net->NoteConvergecast();
  for (int v : tree.post_order) {
    ValidationAgg& agg = inbox[static_cast<size_t>(v)];
    if (!net->is_root(v)) {
      const auto [from, to] = classify(v);
      agg.AddTransition(from, to, values[static_cast<size_t>(v)]);
    }
    for (int child : tree.children[static_cast<size_t>(v)]) {
      agg.Merge(inbox[static_cast<size_t>(child)]);
    }
    if (!net->is_root(v) && !agg.empty()) {
      const int64_t payload =
          4 * wire.counter_bits +
          (agg.has_hint ? hint_values * wire.value_bits : 0);
      if (!net->SendToParent(v, payload)) {
        agg = ValidationAgg{};  // lost uplink: subtree report vanishes
      }
    }
  }
  return inbox[static_cast<size_t>(net->root())];
}

}  // namespace wsnq

#endif  // WSNQ_ALGO_COMMON_H_
