// Shared protocol building blocks: wire sizes, the lt/eq/gt region algebra
// of POS-style filters, validation counter aggregation, hints, and the
// TAG-style k-limited collection used for initialization.
//
// All convergecast helpers run on the net/wave.h engine: per-vertex state
// lives in struct-of-arrays rows of a WaveWorkspace (flat arrays indexed by
// vertex, the ValuesView idiom extended to protocol state), so a wave is a
// tight linear sweep over post order — serially, or partitioned over
// subtrees when a WaveExecutor is installed. Each protocol owns one
// workspace; row capacities persist across rounds, so steady-state waves
// allocate nothing.

#ifndef WSNQ_ALGO_COMMON_H_
#define WSNQ_ALGO_COMMON_H_

#include <algorithm>
#include <cstdint>
#include <iterator>
#include <utility>
#include <vector>

#include "algo/protocol.h"
#include "net/network.h"
#include "net/wave.h"

namespace wsnq {

/// Field sizes used to compute message payloads (Table 1's s_* symbols).
struct WireFormat {
  /// s_v: one measurement [bits] ("two-byte measurements", §5.1.6).
  int64_t value_bits = 16;
  /// One movement counter of a validation packet [bits].
  int64_t counter_bits = 16;
  /// s_b: one histogram bucket count [bits].
  int64_t bucket_count_bits = 16;
  /// Bucket index used by compressed (sparse) histograms [bits].
  int64_t bucket_index_bits = 8;
  /// One interval bound in a refinement request [bits].
  int64_t bound_bits = 16;
  /// An f_1/f_2-style "number of values requested" field [bits].
  int64_t fcount_bits = 16;
};

/// log2(w) when w is a power of two, else -1. Bucket widths derived from
/// power-of-two universes stay powers of two through b-ary halving, so the
/// per-value bucket divisions in the histogram hot loops can use a shift;
/// callers precompute the shift once per layout (see BucketLayout::BucketOf
/// and LcllProtocol::BucketId).
inline int PowerOfTwoShift(int64_t w) {
  if (w <= 0 || (w & (w - 1)) != 0) return -1;
  int shift = 0;
  while ((int64_t{1} << shift) != w) ++shift;
  return shift;
}

/// Position of a value relative to a single threshold filter.
enum class Region { kLt, kEq, kGt };

inline Region ClassifyThreshold(int64_t value, int64_t threshold) {
  if (value < threshold) return Region::kLt;
  if (value > threshold) return Region::kGt;
  return Region::kEq;
}

/// Aggregated content of a POS validation / refinement packet: the four
/// movement counters of §3.2 plus the min/max hint over all values that
/// changed their region.
struct ValidationAgg {
  int64_t into_lt = 0;
  int64_t outof_lt = 0;
  int64_t into_gt = 0;
  int64_t outof_gt = 0;
  bool has_hint = false;
  int64_t min_changed = 0;
  int64_t max_changed = 0;

  bool empty() const {
    return into_lt == 0 && outof_lt == 0 && into_gt == 0 && outof_gt == 0 &&
           !has_hint;
  }

  /// Folds a child's aggregate into this one (TAG-style merge).
  void Merge(const ValidationAgg& other);

  /// Records one node's region transition `from` -> `to` for a value that
  /// is now `value`.
  void AddTransition(Region from, Region to, int64_t value);
};

/// Reusable struct-of-arrays rows for the convergecast hot loops, indexed
/// by vertex. One workspace per protocol instance; a wave's Prepare* call
/// resets the rows it needs while keeping their heap capacity, so repeated
/// waves allocate nothing once warm. Distinct row families back waves that
/// nest (a refinement convergecast issued while a validation wave's root
/// row is still being consumed), and subtree-parallel parts write disjoint
/// vertex rows, so no locking is needed anywhere.
///
/// Setting WSNQ_SOA=0 in the environment makes every Prepare* release its
/// buffers first — restoring the pre-SoA allocate-per-wave behavior for A/B
/// benchmarking. Results are bit-identical either way.
class WaveWorkspace {
 public:
  WaveWorkspace();

  /// `n` ValidationAgg rows, reset to empty.
  std::vector<ValidationAgg>& PrepareAgg(size_t n) {
    return PrepareAggRows(n, 1);
  }
  /// Flat (n × rows) ValidationAgg matrix for multi-rank waves.
  std::vector<ValidationAgg>& PrepareAggRows(size_t n, size_t rows);

  /// `n` value-collection rows, all cleared. Used by the k-limited /
  /// range / top-f collections.
  std::vector<std::vector<int64_t>>& PrepareSets(size_t n);

  /// A second, independent family of value rows for window membership (IQ /
  /// multi-quantile), so a refinement collection can run while root windows
  /// are still being consumed.
  std::vector<std::vector<int64_t>>& PrepareWindows(size_t n);

  /// `n` sparse (bucket, delta) rows, all cleared (LCLL validation).
  std::vector<std::vector<std::pair<int, int64_t>>>& PrepareDeltas(size_t n);

  /// Histogram arena of `n` rows × `buckets` counts. Rows start logically
  /// zero and are zeroed lazily on first HistRow touch; per-row totals
  /// (maintained by the caller through HistTotal) start at zero, so a row
  /// whose total is 0 is never read and never needs zeroing.
  void PrepareHist(size_t n, size_t buckets);
  /// The bucket row of vertex `v`, zeroed on first touch this wave.
  int64_t* HistRow(int v);
  int64_t& HistTotal(int v) { return hist_total_[static_cast<size_t>(v)]; }
  int64_t HistTotal(int v) const {
    return hist_total_[static_cast<size_t>(v)];
  }
  size_t hist_buckets() const { return hist_buckets_; }

 private:
  bool reuse_;  ///< false under WSNQ_SOA=0: release buffers every wave

  std::vector<ValidationAgg> agg_;
  std::vector<std::vector<int64_t>> sets_;
  std::vector<std::vector<int64_t>> windows_;
  std::vector<std::vector<std::pair<int, int64_t>>> deltas_;

  std::vector<int64_t> hist_;
  std::vector<int64_t> hist_total_;
  std::vector<uint64_t> hist_epoch_;
  uint64_t hist_wave_ = 0;
  size_t hist_buckets_ = 0;
};

/// Merges sorted `child` into sorted `mine` (ordered by `cmp`) through
/// `scratch`, leaving `child` empty with its capacity retained for
/// workspace reuse. Equal values keep their relative grouping, so the
/// result is the same sequence a concatenate-then-sort would produce.
template <typename Cmp>
void MergeSortedInto(std::vector<int64_t>* mine, std::vector<int64_t>* child,
                     std::vector<int64_t>* scratch, Cmp cmp) {
  if (child->empty()) return;
  if (mine->empty()) {
    mine->swap(*child);
    return;
  }
  // A handful of child elements binary-insert cheaper than rewriting all of
  // `mine`; upper_bound lands each one after its ties, exactly where
  // std::merge (which copies `mine` first on equality) would put it.
  constexpr size_t kTinyChild = 8;
  if (child->size() <= kTinyChild) {
    for (const int64_t x : *child) {
      mine->insert(std::upper_bound(mine->begin(), mine->end(), x, cmp), x);
    }
    child->clear();
    return;
  }
  scratch->clear();
  scratch->reserve(mine->size() + child->size());
  std::merge(mine->begin(), mine->end(), child->begin(), child->end(),
             std::back_inserter(*scratch), cmp);
  mine->swap(*scratch);
  child->clear();
}

/// Truncates `sorted` (ordered by its wave's comparator) to its first
/// `limit` entries plus all duplicates of the limit-th entry.
inline void TruncateWithTies(std::vector<int64_t>* sorted, int64_t limit) {
  if (static_cast<int64_t>(sorted->size()) <= limit) return;
  const int64_t cutoff = (*sorted)[static_cast<size_t>(limit - 1)];
  size_t keep = static_cast<size_t>(limit);
  while (keep < sorted->size() && (*sorted)[keep] == cutoff) ++keep;
  sorted->resize(keep);
}

/// MergeSortedInto followed by TruncateWithTies(limit). Truncating after
/// every merge (not just once per vertex) is exactness-preserving: an
/// element beyond the limit-th entry of any intermediate superset compares
/// strictly after the final cutoff, so merge-everything-then-truncate
/// would drop it too. It keeps the running list bounded by limit + ties,
/// which turns the high-fanout merge cascade from quadratic in the child
/// count into linear.
template <typename Cmp>
void MergeTruncatedInto(std::vector<int64_t>* mine,
                        std::vector<int64_t>* child,
                        std::vector<int64_t>* scratch, int64_t limit,
                        Cmp cmp) {
  MergeSortedInto(mine, child, scratch, cmp);
  TruncateWithTies(mine, limit);
}

/// Applies aggregated movement counters to root counts (l and g move by the
/// counter deltas; e is rederived from the population size).
inline void ApplyCounters(const ValidationAgg& agg, int64_t population,
                          RootCounts* counts) {
  counts->l += agg.into_lt - agg.outof_lt;
  counts->g += agg.into_gt - agg.outof_gt;
  counts->e = population - counts->l - counts->g;
}

/// Whether `counts` certify that the current filter value is the exact k-th
/// smallest: l < k <= l + e.
inline bool CountsValid(const RootCounts& counts, int64_t k) {
  return counts.l < k && counts.l + counts.e >= k;
}

/// Debug-audit helper: the root's (l, e, g) are componentwise non-negative
/// and partition the sensor population. Message loss can legitimately break
/// this, so call sites guard on `!net->lossy()`.
inline bool CountsConserved(const RootCounts& counts, int64_t population) {
  return counts.l >= 0 && counts.e >= 0 && counts.g >= 0 &&
         counts.l + counts.e + counts.g == population;
}

/// TAG-style k-limited collection (§5.1.6): every node forwards the k
/// smallest values of its subtree — plus all duplicates of the k-th
/// smallest, so the root learns the exact multiplicity of every value up to
/// rank k. Communication is accounted on `net`; returns the root's sorted
/// multiset (size >= min(k, |N|)).
std::vector<int64_t> CollectKSmallest(Network* net,
                                      const std::vector<int64_t>& values,
                                      int64_t k, const WireFormat& wire,
                                      WaveWorkspace* ws = nullptr);

/// Root counts (l, e, g) of `threshold` given a collection that is complete
/// up to and including every duplicate of the k-th smallest value.
RootCounts CountsFromCollection(const std::vector<int64_t>& sorted_collection,
                                int64_t threshold, int64_t population);

/// Best-effort k-th smallest from a possibly incomplete sorted collection
/// (message loss, §6): clamps the rank into the collection and falls back
/// to `fallback` when nothing arrived at all.
inline int64_t BestEffortKth(const std::vector<int64_t>& sorted, int64_t k,
                             int64_t fallback) {
  if (sorted.empty()) return fallback;
  const int64_t idx =
      std::clamp<int64_t>(k, 1, static_cast<int64_t>(sorted.size())) - 1;
  return sorted[static_cast<size_t>(idx)];
}

/// Collects every measurement inside [lo, hi] (inclusive) at the root
/// ("request all values in the remaining interval directly", §3.2).
/// Intermediate nodes merge sorted runs; accounting goes through `net`.
/// Returns the root's sorted multiset.
std::vector<int64_t> RangeValuesConvergecast(Network* net,
                                             const std::vector<int64_t>& values,
                                             int64_t lo, int64_t hi,
                                             const WireFormat& wire,
                                             WaveWorkspace* ws = nullptr);

/// IQ-style bounded refinement response (§4.2.2): collects the `f` largest
/// (or smallest) measurements inside [lo, hi]; intermediate nodes drop
/// everything beyond the f-th extreme, but forward all duplicates of the
/// f-th extreme so the root can account for ties. Returns the root's sorted
/// (ascending) multiset.
std::vector<int64_t> TopFConvergecast(Network* net,
                                      const std::vector<int64_t>& values,
                                      int64_t lo, int64_t hi, int64_t f,
                                      bool largest, const WireFormat& wire,
                                      WaveWorkspace* ws = nullptr);

/// Runs a POS-style transition convergecast. For every sensor vertex v,
/// `classify(v)` returns its (from, to) region pair; region changes are
/// folded into ValidationAgg rows that merge up the tree. A node transmits
/// iff its merged aggregate is non-empty; the packet payload is four
/// movement counters plus `hint_values` measurement fields when the
/// aggregate carries a hint. Returns the root's aggregate.
template <typename ClassifyFn>
ValidationAgg TransitionConvergecast(Network* net,
                                     const std::vector<int64_t>& values,
                                     const WireFormat& wire, int hint_values,
                                     ClassifyFn&& classify,
                                     WaveWorkspace* ws = nullptr) {
  WaveWorkspace fallback;
  if (ws == nullptr) ws = &fallback;
  std::vector<ValidationAgg>& inbox =
      ws->PrepareAgg(static_cast<size_t>(net->num_vertices()));
  struct Ops {
    Network* net;
    const std::vector<int64_t>& values;
    const WireFormat& wire;
    int hint_values;
    ClassifyFn& classify;
    std::vector<ValidationAgg>& inbox;

    WaveSend Process(int v, WaveLane& /*lane*/) {
      ValidationAgg& agg = inbox[static_cast<size_t>(v)];
      if (!net->is_root(v)) {
        const auto [from, to] = classify(v);
        agg.AddTransition(from, to, values[static_cast<size_t>(v)]);
      }
      for (int child : net->tree().children[static_cast<size_t>(v)]) {
        agg.Merge(inbox[static_cast<size_t>(child)]);
      }
      WaveSend send;
      if (!agg.empty()) {
        send.payload_bits =
            4 * wire.counter_bits +
            (agg.has_hint ? hint_values * wire.value_bits : 0);
      }
      return send;
    }
    void OnLost(int v) {
      // Lost uplink: the subtree report vanishes.
      inbox[static_cast<size_t>(v)] = ValidationAgg{};
    }
  };
  Ops ops{net, values, wire, hint_values, classify, inbox};
  RunConvergecastWave(net, ops);
  return inbox[static_cast<size_t>(net->root())];
}

}  // namespace wsnq

#endif  // WSNQ_ALGO_COMMON_H_
