#include "algo/hbc.h"

#include <algorithm>

#include "algo/cost_model.h"
#include "util/check.h"
#include "util/trace.h"

namespace wsnq {
namespace {

/// Region of `value` relative to the NTB interval filter [lb, ub).
Region ClassifyInterval(int64_t value, int64_t lb, int64_t ub) {
  if (value < lb) return Region::kLt;
  if (value >= ub) return Region::kGt;
  return Region::kEq;
}

}  // namespace

HbcProtocol::HbcProtocol(int64_t k, int64_t range_min, int64_t range_max,
                         const WireFormat& wire, const Options& options)
    : k_(k),
      range_min_(range_min),
      range_max_(range_max),
      wire_(wire),
      options_(options) {
  WSNQ_CHECK_GE(k, 1);
  WSNQ_CHECK_LE(range_min, range_max);
  buckets_ = options_.buckets;  // 0: derived from the cost model at init
  if (options_.eliminate_threshold_broadcast) {
    // The paper notes direct retrieval and the interval filter do not
    // compose (§4.1.2); the interval filter needs the drill to end on an
    // interval every node saw.
    options_.direct_retrieval = false;
  }
}

void HbcProtocol::Initialize(Network* net,
                             const std::vector<int64_t>& values) {
  // Query dissemination (k and b).
  net->FloodFromRoot(2 * wire_.counter_bits);

  DrillOptions drill;
  drill.buckets = buckets_;
  drill.direct_capacity =
      options_.direct_retrieval
          ? net->packetizer().ValuesPerPacket(wire_.value_bits)
          : 0;
  const DrillResult init = BAryDrill(net, values, range_min_, range_max_ + 1,
                                     /*below_lb=*/0, k_, drill, wire_,
                                     /*less_than_ub=*/-1, &ws_);
  quantile_ = init.quantile;
  if (options_.eliminate_threshold_broadcast) {
    filter_lb_ = init.last_lb;
    filter_ub_ = init.last_ub;
    counts_.l = init.below_last;
    counts_.e = init.in_last;
    counts_.g = net->num_sensors() - counts_.l - counts_.e;
  } else {
    counts_ = init.counts;
    // Filter broadcast (POS-style).
    net->FloodFromRoot(wire_.value_bits);
    filter_ = quantile_;
  }
}

void HbcProtocol::RunRound(Network* net,
                           const std::vector<int64_t>& values_by_vertex,
                           int64_t round) {
  refinements_ = 0;
  if (buckets_ == 0) {
    // Cost model of §4.1, evaluated once (the message geometry is static).
    CostModelParams params;
    params.header_bits = net->packetizer().header_bits;
    params.refinement_bits = 2 * wire_.bound_bits;
    params.bucket_bits = wire_.bucket_count_bits;
    buckets_ = RoundedBExact(params);
    WSNQ_TRACE_EVENT("init", "bucket_choice", -1, {"b", buckets_},
                     {"header_bits", params.header_bits},
                     {"refinement_bits", params.refinement_bits},
                     {"bucket_bits", params.bucket_bits});
  }
  // Round 0, or the routing tree changed under us (fault-driven repair):
  // rebuild the root state rather than miscount over a stale topology.
  if (round == 0 || tree_epoch_ != net->tree_epoch()) {
    tree_epoch_ = net->tree_epoch();
    Initialize(net, values_by_vertex);
    prev_values_ = values_by_vertex;
    return;
  }
  WSNQ_CHECK_EQ(prev_values_.size(), values_by_vertex.size());
  if (options_.eliminate_threshold_broadcast) {
    RunNtbRound(net, values_by_vertex);
  } else {
    RunBasicRound(net, values_by_vertex);
  }
  prev_values_ = values_by_vertex;
}

void HbcProtocol::RunBasicRound(Network* net,
                                const std::vector<int64_t>& values) {
  const int64_t filter = filter_;
  const std::vector<int64_t>& prev = prev_values_;
  // Modified hint (§5.1.6): one value — the max distance between the old
  // quantile and any state-changing value — instead of POS's (min, max).
  const ValidationAgg validation = TransitionConvergecast(
      net, values, wire_, options_.use_hints ? 1 : 0, [&](int v) {
        const size_t i = static_cast<size_t>(v);
        return std::pair(ClassifyThreshold(prev[i], filter),
                         ClassifyThreshold(values[i], filter));
      },
      &ws_);
  ApplyCounters(validation, net->num_sensors(), &counts_);
  if (!net->lossy()) {
    // Validation deltas must keep (l, e, g) a partition of the population.
    WSNQ_DCHECK(CountsConserved(counts_, net->num_sensors()));
  }

  if (CountsValid(counts_, k_)) {
    quantile_ = filter_;
    return;
  }

  // Hinted refinement interval (§4.1.1).
  int64_t lb, ub, below_lb, less_than_ub;
  if (counts_.l >= k_) {  // downward
    ub = filter_;
    less_than_ub = counts_.l;
    below_lb = -1;
    if (options_.use_hints && validation.has_hint) {
      const int64_t d = std::max(filter_ - validation.min_changed,
                                 validation.max_changed - filter_);
      lb = std::max(range_min_, filter_ - d);
    } else {
      lb = range_min_;
    }
    if (lb == range_min_) {
      below_lb = 0;
      less_than_ub = -1;
    }
  } else {  // upward
    lb = filter_ + 1;
    below_lb = counts_.l + counts_.e;
    less_than_ub = -1;
    if (options_.use_hints && validation.has_hint) {
      const int64_t d = std::max(filter_ - validation.min_changed,
                                 validation.max_changed - filter_);
      ub = std::min(range_max_, filter_ + d) + 1;
    } else {
      ub = range_max_ + 1;
    }
  }

  if (lb >= ub) {
    // Only possible when loss corrupted the counts/hints; keep the filter.
    WSNQ_CHECK(net->lossy());
    quantile_ = filter_;
    return;
  }
  WSNQ_TRACE_SCOPE("refinement", "drill", -1, {"lb", lb}, {"ub", ub},
                   {"b", buckets_});
  DrillOptions drill;
  drill.buckets = buckets_;
  drill.direct_capacity =
      options_.direct_retrieval
          ? net->packetizer().ValuesPerPacket(wire_.value_bits)
          : 0;
  const DrillResult refined = BAryDrill(net, values, lb, ub, below_lb, k_,
                                        drill, wire_, less_than_ub, &ws_);
  refinements_ = refined.rounds;
  quantile_ = refined.quantile;
  counts_ = refined.counts;
  // Threshold broadcast iff the quantile changed (§4.1.1).
  if (quantile_ != filter_) {
    net->FloodFromRoot(wire_.value_bits);
    filter_ = quantile_;
  }
}

void HbcProtocol::RunNtbRound(Network* net,
                              const std::vector<int64_t>& values) {
  const int64_t flb = filter_lb_;
  const int64_t fub = filter_ub_;
  // The NTB filter is a genuine interval and stays inside the value range.
  WSNQ_DCHECK_LT(flb, fub);
  WSNQ_DCHECK_GE(flb, range_min_);
  WSNQ_DCHECK_LE(fub, range_max_ + 1);
  const std::vector<int64_t>& prev = prev_values_;
  // Validation relative to the three intervals [-inf,lb), [lb,ub), [ub,inf)
  // (§4.1.2); hints are the plain (min, max) of changed values.
  const ValidationAgg validation = TransitionConvergecast(
      net, values, wire_, options_.use_hints ? 2 : 0, [&](int v) {
        const size_t i = static_cast<size_t>(v);
        return std::pair(ClassifyInterval(prev[i], flb, fub),
                         ClassifyInterval(values[i], flb, fub));
      },
      &ws_);
  ApplyCounters(validation, net->num_sensors(), &counts_);
  if (!net->lossy()) {
    WSNQ_DCHECK(CountsConserved(counts_, net->num_sensors()));
  }

  // A width-one certified filter interval pins the quantile exactly; that
  // is the only case without a refinement.
  if (CountsValid(counts_, k_) && fub - flb == 1) {
    quantile_ = flb;
    return;
  }

  // Pick the refinement interval (§4.1.2): [hint, lb), [lb, ub), or
  // [ub, hint].
  int64_t lb, ub, below_lb, less_than_ub;
  if (counts_.l >= k_) {
    ub = flb;
    less_than_ub = counts_.l;
    below_lb = -1;
    lb = options_.use_hints && validation.has_hint
             ? std::max(range_min_, validation.min_changed)
             : range_min_;
    if (lb == range_min_) {
      below_lb = 0;
      less_than_ub = -1;
    }
  } else if (counts_.l + counts_.e >= k_) {
    lb = flb;
    ub = fub;
    below_lb = counts_.l;
    less_than_ub = -1;
  } else {
    lb = fub;
    below_lb = counts_.l + counts_.e;
    less_than_ub = -1;
    ub = options_.use_hints && validation.has_hint
             ? std::min(range_max_, validation.max_changed) + 1
             : range_max_ + 1;
  }

  if (lb >= ub) {
    WSNQ_CHECK(net->lossy());
    quantile_ = filter_lb_;  // best effort: the filter's lower bound
    return;
  }
  WSNQ_TRACE_SCOPE("refinement", "ntb_drill", -1, {"lb", lb}, {"ub", ub},
                   {"b", buckets_});
  DrillOptions drill;
  drill.buckets = buckets_;
  drill.direct_capacity = 0;  // incompatible with the interval filter
  const DrillResult refined = BAryDrill(net, values, lb, ub, below_lb, k_,
                                        drill, wire_, less_than_ub, &ws_);
  refinements_ = refined.rounds;
  quantile_ = refined.quantile;
  // The filter becomes the last interval everyone saw; no broadcast.
  filter_lb_ = refined.last_lb;
  filter_ub_ = refined.last_ub;
  counts_.l = refined.below_last;
  counts_.e = refined.in_last;
  counts_.g = net->num_sensors() - counts_.l - counts_.e;
}

void HbcProtocol::AdoptState(int64_t filter, const RootCounts& counts,
                             std::vector<int64_t> prev_values) {
  WSNQ_CHECK(!options_.eliminate_threshold_broadcast);
  filter_ = filter;
  quantile_ = filter;
  counts_ = counts;
  prev_values_ = std::move(prev_values);
}

}  // namespace wsnq
