#include "algo/cost_model.h"

#include <cmath>

#include "util/check.h"
#include "util/lambert_w.h"

namespace wsnq {

double BExact(const CostModelParams& params) {
  WSNQ_CHECK_GT(params.bucket_bits, 0);
  const double k = static_cast<double>(2 * params.header_bits +
                                       params.refinement_bits) /
                   static_cast<double>(params.bucket_bits);
  constexpr double kE = 2.718281828459045;
  const double b = std::exp(LambertW0(k / kE) + 1.0);
  return b < 2.0 ? 2.0 : b;
}

double BArySearchCostBits(const CostModelParams& params, int buckets,
                          int64_t universe) {
  WSNQ_CHECK_GE(buckets, 2);
  WSNQ_CHECK_GE(universe, 2);
  const double rounds = std::ceil(std::log(static_cast<double>(universe)) /
                                  std::log(static_cast<double>(buckets)));
  const double per_round = static_cast<double>(
      2 * params.header_bits + params.refinement_bits +
      static_cast<int64_t>(buckets) * params.bucket_bits);
  return rounds * per_round;
}

int OptimalBuckets(const CostModelParams& params, int64_t universe,
                   int max_buckets) {
  int best_b = 2;
  double best_cost = BArySearchCostBits(params, 2, universe);
  for (int b = 3; b <= max_buckets; ++b) {
    const double cost = BArySearchCostBits(params, b, universe);
    if (cost < best_cost) {
      best_cost = cost;
      best_b = b;
    }
  }
  return best_b;
}

int RoundedBExact(const CostModelParams& params) {
  const double b = BExact(params);
  const int rounded = static_cast<int>(std::lround(b));
  return rounded < 2 ? 2 : rounded;
}

}  // namespace wsnq
