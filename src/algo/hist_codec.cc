#include "algo/hist_codec.h"

#include <algorithm>

#include "util/check.h"

namespace wsnq {

BucketLayout::BucketLayout(int64_t lb, int64_t ub, int max_buckets)
    : lb_(lb), ub_(ub) {
  WSNQ_CHECK_LT(lb, ub);
  WSNQ_CHECK_GE(max_buckets, 1);
  const int64_t span = ub - lb;
  width_ = (span + max_buckets - 1) / max_buckets;
  WSNQ_CHECK_GE(width_, 1);
  num_buckets_ = static_cast<int>((span + width_ - 1) / width_);
  // Bucket edges partition [lb, ub): monotone, contiguous, and the last
  // bucket's (clamped) upper edge lands exactly on ub.
  WSNQ_DCHECK_GE(num_buckets_, 1);
  WSNQ_DCHECK_LE(num_buckets_, max_buckets);
  WSNQ_DCHECK_LT(BucketLb(num_buckets_ - 1), ub_);
  WSNQ_DCHECK_EQ(BucketUb(num_buckets_ - 1), ub_);
}

int BucketLayout::BucketOf(int64_t value) const {
  WSNQ_DCHECK(Contains(value));
  const int bucket = static_cast<int>((value - lb_) / width_);
  WSNQ_DCHECK_GE(bucket, 0);
  WSNQ_DCHECK_LT(bucket, num_buckets_);
  return bucket;
}

int64_t BucketLayout::BucketUb(int i) const {
  return std::min(ub_, lb_ + (static_cast<int64_t>(i) + 1) * width_);
}

void SparseHistogram::Merge(const SparseHistogram& other) {
  WSNQ_CHECK_EQ(counts_.size(), other.counts_.size());
  for (size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
}

int SparseHistogram::NonEmpty() const {
  int n = 0;
  for (int64_t c : counts_) n += (c != 0);
  return n;
}

int64_t SparseHistogram::Total() const {
  int64_t t = 0;
  for (int64_t c : counts_) t += c;
  return t;
}

int64_t SparseHistogram::EncodedBits(const WireFormat& wire) const {
  const int64_t dense =
      static_cast<int64_t>(counts_.size()) * wire.bucket_count_bits;
  const int64_t sparse = static_cast<int64_t>(NonEmpty()) *
                         (wire.bucket_count_bits + wire.bucket_index_bits);
  return std::min(dense, sparse);
}

SparseHistogram HistogramConvergecast(Network* net,
                                      const std::vector<int64_t>& values,
                                      const BucketLayout& layout,
                                      const WireFormat& wire) {
  const SpanningTree& tree = net->tree();
  std::vector<SparseHistogram> inbox(
      static_cast<size_t>(net->num_vertices()),
      SparseHistogram(layout.num_buckets()));
  net->NoteConvergecast();
  for (int v : tree.post_order) {
    SparseHistogram& mine = inbox[static_cast<size_t>(v)];
    if (!net->is_root(v)) {
      const int64_t value = values[static_cast<size_t>(v)];
      if (layout.Contains(value)) mine.Add(layout.BucketOf(value));
    }
    for (int child : tree.children[static_cast<size_t>(v)]) {
      mine.Merge(inbox[static_cast<size_t>(child)]);
    }
    if (!net->is_root(v) && !mine.empty()) {
      if (!net->SendToParent(v, mine.EncodedBits(wire))) {
        mine = SparseHistogram(layout.num_buckets());  // lost uplink
      }
    }
  }
#ifndef NDEBUG
  if (!net->lossy()) {
    // Conservation through the convergecast: the root's histogram holds
    // exactly one count per in-range sensor measurement.
    int64_t expect = 0;
    for (int v : tree.post_order) {
      if (!net->is_root(v) && layout.Contains(values[static_cast<size_t>(v)]))
        ++expect;
    }
    WSNQ_DCHECK_EQ(inbox[static_cast<size_t>(net->root())].Total(), expect);
  }
#endif
  return inbox[static_cast<size_t>(net->root())];
}

}  // namespace wsnq
