#include "algo/hist_codec.h"

#include <algorithm>

#include "util/check.h"

namespace wsnq {

BucketLayout::BucketLayout(int64_t lb, int64_t ub, int max_buckets)
    : lb_(lb), ub_(ub) {
  WSNQ_CHECK_LT(lb, ub);
  WSNQ_CHECK_GE(max_buckets, 1);
  const int64_t span = ub - lb;
  width_ = (span + max_buckets - 1) / max_buckets;
  WSNQ_CHECK_GE(width_, 1);
  width_shift_ = PowerOfTwoShift(width_);
  num_buckets_ = static_cast<int>((span + width_ - 1) / width_);
  // Bucket edges partition [lb, ub): monotone, contiguous, and the last
  // bucket's (clamped) upper edge lands exactly on ub.
  WSNQ_DCHECK_GE(num_buckets_, 1);
  WSNQ_DCHECK_LE(num_buckets_, max_buckets);
  WSNQ_DCHECK_LT(BucketLb(num_buckets_ - 1), ub_);
  WSNQ_DCHECK_EQ(BucketUb(num_buckets_ - 1), ub_);
}

int64_t BucketLayout::BucketUb(int i) const {
  return std::min(ub_, lb_ + (static_cast<int64_t>(i) + 1) * width_);
}

void SparseHistogram::Merge(const SparseHistogram& other) {
  WSNQ_CHECK_EQ(counts_.size(), other.counts_.size());
  for (size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
}

int SparseHistogram::NonEmpty() const {
  int n = 0;
  for (int64_t c : counts_) n += (c != 0);
  return n;
}

int64_t SparseHistogram::Total() const {
  int64_t t = 0;
  for (int64_t c : counts_) t += c;
  return t;
}

int64_t SparseHistogram::EncodedBits(const WireFormat& wire) const {
  const int64_t dense =
      static_cast<int64_t>(counts_.size()) * wire.bucket_count_bits;
  const int64_t sparse = static_cast<int64_t>(NonEmpty()) *
                         (wire.bucket_count_bits + wire.bucket_index_bits);
  return std::min(dense, sparse);
}

namespace {

/// Wire size of one arena bucket row: the cheaper of dense and compressed.
int64_t EncodedRowBits(const int64_t* row, size_t buckets,
                       const WireFormat& wire) {
  int64_t nonempty = 0;
  for (size_t i = 0; i < buckets; ++i) nonempty += (row[i] != 0);
  const int64_t dense =
      static_cast<int64_t>(buckets) * wire.bucket_count_bits;
  const int64_t sparse =
      nonempty * (wire.bucket_count_bits + wire.bucket_index_bits);
  return std::min(dense, sparse);
}

/// Ops for HistogramConvergecast over the workspace arena: bucket rows are
/// zeroed lazily on first touch, children with a zero total are skipped
/// without reading their rows.
struct HistogramOps {
  Network* net;
  const std::vector<int64_t>& values;
  const BucketLayout& layout;
  const WireFormat& wire;
  WaveWorkspace* ws;

  WaveSend Process(int v, WaveLane& /*lane*/) {
    int64_t total = 0;
    int64_t* row = nullptr;
    if (!net->is_root(v)) {
      const int64_t value = values[static_cast<size_t>(v)];
      if (layout.Contains(value)) {
        row = ws->HistRow(v);
        row[layout.BucketOf(value)] += 1;
        total = 1;
      }
    }
    const size_t buckets = ws->hist_buckets();
    for (int child : net->tree().children[static_cast<size_t>(v)]) {
      const int64_t child_total = ws->HistTotal(child);
      if (child_total == 0) continue;
      if (row == nullptr) row = ws->HistRow(v);
      const int64_t* child_row = ws->HistRow(child);
      for (size_t b = 0; b < buckets; ++b) row[b] += child_row[b];
      total += child_total;
    }
    ws->HistTotal(v) = total;
    WaveSend send;
    if (total > 0) send.payload_bits = EncodedRowBits(row, buckets, wire);
    return send;
  }
  void OnLost(int v) {
    ws->HistTotal(v) = 0;  // lost uplink: the parent never merges the row
  }
};

}  // namespace

SparseHistogram HistogramConvergecast(Network* net,
                                      const std::vector<int64_t>& values,
                                      const BucketLayout& layout,
                                      const WireFormat& wire,
                                      WaveWorkspace* ws) {
  WaveWorkspace fallback;
  if (ws == nullptr) ws = &fallback;
  const size_t buckets = static_cast<size_t>(layout.num_buckets());
  ws->PrepareHist(static_cast<size_t>(net->num_vertices()), buckets);
  HistogramOps ops{net, values, layout, wire, ws};
  RunConvergecastWave(net, ops);
  const int root = net->root();
  SparseHistogram result(layout.num_buckets());
  if (ws->HistTotal(root) > 0) {
    const int64_t* row = ws->HistRow(root);
    for (size_t b = 0; b < buckets; ++b) {
      if (row[b] != 0) result.Add(static_cast<int>(b), row[b]);
    }
  }
#ifndef NDEBUG
  if (!net->lossy()) {
    // Conservation through the convergecast: the root's histogram holds
    // exactly one count per in-range sensor measurement.
    int64_t expect = 0;
    for (int v : net->tree().post_order) {
      if (!net->is_root(v) && layout.Contains(values[static_cast<size_t>(v)]))
        ++expect;
    }
    WSNQ_DCHECK_EQ(result.Total(), expect);
  }
#endif
  return result;
}

}  // namespace wsnq
