#include "algo/lcll.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "algo/hist_codec.h"
#include "algo/snapshot_bary.h"
#include "util/check.h"
#include "util/trace.h"

namespace wsnq {

LcllProtocol::LcllProtocol(int64_t k, int64_t range_min, int64_t range_max,
                           const WireFormat& wire, const Options& options)
    : k_(k),
      range_min_(range_min),
      range_max_(range_max),
      wire_(wire),
      options_(options) {
  WSNQ_CHECK_GE(k, 1);
  WSNQ_CHECK_LE(range_min, range_max);
}

int LcllProtocol::BucketId(int64_t value) const {
  if (value < window_lo_) return -1;
  const int64_t offset = value - window_lo_;
  const int64_t idx =
      width_shift_ >= 0 ? offset >> width_shift_ : offset / width_;
  return idx >= buckets_ ? buckets_ : static_cast<int>(idx);
}

int64_t LcllProtocol::AlignWindowLo(int64_t x) const {
  // Clamp into the admissible origin range, then align down to the global
  // w-grid anchored at range_min (slips preserve this alignment, which
  // keeps slip bookkeeping exact). An overhanging top bucket is fine.
  const int64_t max_lo = std::max(range_min_, range_max_ + 1 - span());
  x = std::clamp(x, range_min_, max_lo);
  return range_min_ + (x - range_min_) / width_ * width_;
}

void LcllProtocol::Initialize(Network* net,
                              const std::vector<int64_t>& values) {
  if (options_.buckets > 0) {
    buckets_ = options_.buckets;
  } else {
    // b from the message size, as suggested by [16].
    buckets_ = static_cast<int>(net->packetizer().max_payload_bits /
                                wire_.bucket_count_bits);
  }
  WSNQ_CHECK_GE(buckets_, 2);
  prev_bucket_valid_ = false;
  if (options_.bucket_width > 0) {
    width_ = options_.bucket_width;
  } else {
    const int64_t tau = range_max_ - range_min_ + 1;
    const int64_t b2 =
        static_cast<int64_t>(buckets_) * static_cast<int64_t>(buckets_);
    width_ = std::max<int64_t>(1, (tau + b2 - 1) / b2);
  }
  width_shift_ = PowerOfTwoShift(width_);

  // Query dissemination.
  net->FloodFromRoot(wire_.counter_bits);
  // Initial quantile via a full-range b-ary drill.
  DrillOptions drill;
  drill.buckets = buckets_;
  drill.direct_capacity =
      options_.direct_retrieval
          ? net->packetizer().ValuesPerPacket(wire_.value_bits)
          : 0;
  const DrillResult init =
      BAryDrill(net, values, range_min_, range_max_ + 1,
                /*below_lb=*/0, k_, drill, wire_, /*less_than_ub=*/-1, &ws_);
  quantile_ = init.quantile;
  counts_ = init.counts;
  // Focus the window on the quantile and learn its histogram.
  Reestablish(net, values, AlignWindowLo(quantile_ - span() / 2));
}

void LcllProtocol::Validate(Network* net,
                            const std::vector<int64_t>& values) {
  // inbox[v]: sparse (bucket id, signed delta) row of v's subtree, sorted
  // by bucket id — the struct-of-arrays form of a per-vertex ordered map,
  // merged bottom-up with a linear two-pointer sweep.
  std::vector<std::vector<std::pair<int, int64_t>>>& inbox =
      ws_.PrepareDeltas(static_cast<size_t>(net->num_vertices()));

  // Prescan: most rounds most values stay in their bucket, so the wave
  // below would do nothing at most vertices. One flat pass finds the
  // vertices whose bucket moved and flags their root paths; the wave then
  // skips every unflagged vertex (its subtree provably carries no deltas,
  // so it would neither merge nor transmit). The flagged set transmits the
  // identical payloads in the identical post order as the full sweep.
  const size_t n = static_cast<size_t>(net->num_vertices());
  const size_t root = static_cast<size_t>(net->root());
  if (!prev_bucket_valid_ || prev_bucket_window_lo_ != window_lo_ ||
      prev_bucket_.size() != n) {
    prev_bucket_.resize(n);
    for (size_t v = 0; v < n; ++v) {
      prev_bucket_[v] = BucketId(prev_values_[v]);
    }
    prev_bucket_valid_ = true;
    prev_bucket_window_lo_ = window_lo_;
  }
  delta_dirty_.assign(n, 0);
  delta_changed_.assign(n, 0);
  delta_from_.resize(n);  // read only where delta_changed_ is set
  const std::vector<int>& parent = net->tree().parent;
  for (size_t v = 0; v < n; ++v) {
    if (v == root) continue;
    const int to = BucketId(values[v]);
    const int from = prev_bucket_[v];
    if (to == from) continue;
    delta_changed_[v] = 1;
    delta_from_[v] = from;
    prev_bucket_[v] = to;
    for (int u = static_cast<int>(v);
         u >= 0 && !delta_dirty_[static_cast<size_t>(u)];
         u = parent[static_cast<size_t>(u)]) {
      delta_dirty_[static_cast<size_t>(u)] = 1;
    }
  }

  struct Ops {
    LcllProtocol* self;
    Network* net;
    std::vector<std::vector<std::pair<int, int64_t>>>& inbox;
    int64_t entry_bits;
    int64_t dense_bits;

    WaveSend Process(int v, WaveLane& lane) {
      const size_t i = static_cast<size_t>(v);
      if (!self->delta_dirty_[i]) return WaveSend{};
      std::vector<std::pair<int, int64_t>>& deltas = inbox[i];
      if (self->delta_changed_[i]) {
        const int from = self->delta_from_[i];
        const int to = self->prev_bucket_[i];  // prescan stored the new id
        // "The last bucket of the node is reduced by 1 ... the count of
        // the new bucket is increased by one" (§5.1.6).
        if (from < to) {
          deltas.emplace_back(from, -1);
          deltas.emplace_back(to, 1);
        } else {
          deltas.emplace_back(to, 1);
          deltas.emplace_back(from, -1);
        }
      }
      for (int child : net->tree().children[static_cast<size_t>(v)]) {
        std::vector<std::pair<int, int64_t>>& theirs =
            inbox[static_cast<size_t>(child)];
        if (theirs.empty()) continue;
        if (deltas.empty()) {
          deltas.swap(theirs);
          continue;
        }
        std::vector<std::pair<int, int64_t>>& merged = lane.pair_scratch;
        merged.clear();
        merged.reserve(deltas.size() + theirs.size());
        size_t a = 0;
        size_t b = 0;
        while (a < deltas.size() && b < theirs.size()) {
          if (deltas[a].first < theirs[b].first) {
            merged.push_back(deltas[a++]);
          } else if (theirs[b].first < deltas[a].first) {
            merged.push_back(theirs[b++]);
          } else {
            const int64_t sum = deltas[a].second + theirs[b].second;
            if (sum != 0) merged.emplace_back(deltas[a].first, sum);
            ++a;
            ++b;
          }
        }
        merged.insert(merged.end(), deltas.begin() + a, deltas.end());
        merged.insert(merged.end(), theirs.begin() + b, theirs.end());
        deltas.swap(merged);
        theirs.clear();
      }
      WaveSend send;
      if (!deltas.empty()) {
        send.payload_bits =
            std::min(static_cast<int64_t>(deltas.size()) * entry_bits,
                     dense_bits);
      }
      return send;
    }
    void OnLost(int v) { inbox[static_cast<size_t>(v)].clear(); }
  };
  Ops ops{this,
          net,
          inbox,
          wire_.bucket_index_bits + wire_.bucket_count_bits,
          static_cast<int64_t>(buckets_ + 2) * wire_.bucket_count_bits};
  RunConvergecastWave(net, ops);
  for (const auto& [bucket, delta] : inbox[static_cast<size_t>(net->root())]) {
    if (bucket < 0) {
      below_ += delta;
    } else if (bucket >= buckets_) {
      above_ += delta;
    } else {
      hist_[static_cast<size_t>(bucket)] += delta;
    }
  }
  if (net->lossy()) {
    // Half-delivered delta pairs can drive counts negative; clamp so the
    // locate logic stays sane (the rank error reflects the damage).
    below_ = std::max<int64_t>(below_, 0);
    above_ = std::max<int64_t>(above_, 0);
    for (int64_t& c : hist_) c = std::max<int64_t>(c, 0);
  } else {
    // Delta validation conserves the population split across the
    // below / window / above regions (§5.1.6 bookkeeping).
    int64_t in_window = 0;
    for (int64_t c : hist_) {
      WSNQ_DCHECK_GE(c, 0);
      in_window += c;
    }
    WSNQ_DCHECK_GE(below_, 0);
    WSNQ_DCHECK_GE(above_, 0);
    WSNQ_DCHECK_EQ(below_ + in_window + above_, net->num_sensors());
  }
}

void LcllProtocol::Reestablish(Network* net,
                               const std::vector<int64_t>& values,
                               int64_t new_window_lo) {
  window_lo_ = new_window_lo;
  // Window announcement.
  net->FloodFromRoot(2 * wire_.bound_bits);
  ++refinements_;

  // Full-network histogram convergecast over the b + 2 logical buckets,
  // accumulated in the workspace's flat histogram arena (rows are zeroed
  // lazily; a subtree whose total is zero is never read, so lost subtrees
  // cost nothing).
  const size_t logical = static_cast<size_t>(buckets_) + 2;
  ws_.PrepareHist(static_cast<size_t>(net->num_vertices()), logical);
  struct Ops {
    LcllProtocol* self;
    Network* net;
    const std::vector<int64_t>& values;
    WaveWorkspace* ws;
    size_t logical;
    int64_t entry_bits;
    int64_t dense_bits;

    WaveSend Process(int v, WaveLane& /*lane*/) {
      int64_t total = 0;
      int64_t* row = nullptr;
      if (!net->is_root(v)) {
        row = ws->HistRow(v);
        ++row[static_cast<size_t>(
            self->BucketId(values[static_cast<size_t>(v)]) + 1)];
        total = 1;
      }
      for (int child : net->tree().children[static_cast<size_t>(v)]) {
        const int64_t child_total = ws->HistTotal(child);
        if (child_total == 0) continue;
        const int64_t* theirs = ws->HistRow(child);
        if (row == nullptr) row = ws->HistRow(v);
        for (size_t i = 0; i < logical; ++i) row[i] += theirs[i];
        total += child_total;
      }
      ws->HistTotal(v) = total;
      WaveSend send;
      if (!net->is_root(v)) {
        int64_t nonempty = 0;
        for (size_t i = 0; i < logical; ++i) nonempty += (row[i] != 0);
        send.payload_bits = std::min(nonempty * entry_bits, dense_bits);
      }
      return send;
    }
    void OnLost(int v) { ws->HistTotal(v) = 0; }
  };
  Ops ops{this,
          net,
          values,
          &ws_,
          logical,
          wire_.bucket_index_bits + wire_.bucket_count_bits,
          static_cast<int64_t>(logical) * wire_.bucket_count_bits};
  RunConvergecastWave(net, ops);
  const int64_t* root_hist = ws_.HistRow(net->root());
  below_ = root_hist[0];
  above_ = root_hist[logical - 1];
  hist_.assign(root_hist + 1, root_hist + (logical - 1));
  WSNQ_CHECK_EQ(static_cast<int>(hist_.size()), buckets_);
}

void LcllProtocol::Slip(Network* net, const std::vector<int64_t>& values,
                        bool down) {
  const int64_t old_lo = window_lo_;
  const int64_t new_lo =
      down ? std::max(range_min_, old_lo - span()) : old_lo + span();
  WSNQ_CHECK_NE(new_lo, old_lo);
  const int64_t new_hi = new_lo + span();

  // Window announcement, then a histogram of the *new* window region only:
  // "the refinement interval of this approach is very selective" (§5.2.1).
  WSNQ_TRACE_EVENT("refinement", "slip", -1, {"down", down ? 1 : 0},
                   {"new_lo", new_lo}, {"new_hi", new_hi});
  net->FloodFromRoot(2 * wire_.bound_bits);
  ++refinements_;
  const BucketLayout layout(new_lo, new_hi, buckets_);
  WSNQ_CHECK_EQ(layout.width(), width_);
  const SparseHistogram nh =
      HistogramConvergecast(net, values, layout, wire_, &ws_);

  std::vector<int64_t> new_hist(static_cast<size_t>(buckets_), 0);
  for (int j = 0; j < layout.num_buckets(); ++j) {
    new_hist[static_cast<size_t>(j)] = nh.count(j);
  }
  if (down) {
    // Values in [new_lo, old_lo) leave the below-boundary; old window
    // buckets at or above new_hi become the above-boundary.
    int64_t moved_from_below = 0;
    for (int j = 0; j < buckets_; ++j) {
      if (new_lo + static_cast<int64_t>(j + 1) * width_ <= old_lo) {
        moved_from_below += new_hist[static_cast<size_t>(j)];
      }
    }
    int64_t moved_to_above = 0;
    for (int j = 0; j < buckets_; ++j) {
      if (old_lo + static_cast<int64_t>(j) * width_ >= new_hi) {
        moved_to_above += hist_[static_cast<size_t>(j)];
      }
    }
    below_ -= moved_from_below;
    above_ += moved_to_above;
  } else {
    // Upward slips never overlap: the old window drops below wholesale.
    int64_t old_window_total = 0;
    for (int64_t c : hist_) old_window_total += c;
    below_ += old_window_total;
    int64_t new_window_total = 0;
    for (int64_t c : new_hist) new_window_total += c;
    above_ -= new_window_total;
  }
  hist_ = std::move(new_hist);
  window_lo_ = new_lo;

  if (net->lossy()) {
    below_ = std::max<int64_t>(below_, 0);
    above_ = std::max<int64_t>(above_, 0);
  } else {
    int64_t in_window = 0;
    for (int64_t c : hist_) in_window += c;
    WSNQ_CHECK_EQ(below_ + in_window + above_, net->num_sensors());
    WSNQ_CHECK_GE(below_, 0);
    WSNQ_CHECK_GE(above_, 0);
  }
}

void LcllProtocol::BestEffortResolve(Network* net,
                                     const std::vector<int64_t>& values) {
  // Re-sync: rebuild the whole histogram around the last known quantile
  // (what a deployed root would do after detecting inconsistent counts),
  // then resolve a rank clamped into whatever actually arrived.
  Reestablish(net, values, AlignWindowLo(quantile_ - span() / 2));
  int64_t in_window = 0;
  for (int64_t c : hist_) in_window += c;
  if (in_window == 0) return;  // nothing to go on; keep the old quantile
  const int64_t rank =
      std::clamp<int64_t>(k_, below_ + 1, below_ + in_window);
  int64_t cl = below_;
  for (int j = 0; j < buckets_; ++j) {
    const int64_t c = hist_[static_cast<size_t>(j)];
    if (cl + c >= rank) {
      ResolveBucket(net, values, j, std::min(cl, k_ - 1));
      return;
    }
    cl += c;
  }
}

void LcllProtocol::ResolveBucket(Network* net,
                                 const std::vector<int64_t>& values, int j,
                                 int64_t cl) {
  if (net->lossy()) cl = std::clamp<int64_t>(cl, 0, k_ - 1);
  const int64_t blo = window_lo_ + static_cast<int64_t>(j) * width_;
  const int64_t bhi = std::min(blo + width_, range_max_ + 1);
  const int64_t in_bucket = hist_[static_cast<size_t>(j)];
  if (width_ == 1) {
    quantile_ = blo;
    counts_.l = cl;
    counts_.e = in_bucket;
    counts_.g = net->num_sensors() - cl - in_bucket;
    return;
  }
  // Over-wide bucket: values can shuffle inside it without any validation
  // delta, so the exact value must be re-resolved whenever it is needed.
  WSNQ_TRACE_SCOPE("refinement", "resolve_bucket", -1, {"bucket", j},
                   {"lo", blo}, {"hi", bhi});
  DrillOptions drill;
  drill.buckets = buckets_;
  drill.direct_capacity =
      options_.direct_retrieval
          ? net->packetizer().ValuesPerPacket(wire_.value_bits)
          : 0;
  const DrillResult result = BAryDrill(net, values, blo, bhi, cl, k_, drill,
                                       wire_, /*less_than_ub=*/-1, &ws_);
  refinements_ += result.rounds;
  quantile_ = result.quantile;
  counts_ = result.counts;
}

void LcllProtocol::RunRound(Network* net,
                            const std::vector<int64_t>& values_by_vertex,
                            int64_t round) {
  refinements_ = 0;
  // Round 0, or the routing tree changed under us (fault-driven repair):
  // rebuild the root state rather than miscount over a stale topology.
  if (round == 0 || tree_epoch_ != net->tree_epoch()) {
    tree_epoch_ = net->tree_epoch();
    Initialize(net, values_by_vertex);
    prev_values_ = values_by_vertex;
    return;
  }
  WSNQ_CHECK_EQ(prev_values_.size(), values_by_vertex.size());

  Validate(net, values_by_vertex);
  prev_values_ = values_by_vertex;

  // Locate the k-th rank; refocus the window first if it escaped. Under
  // message loss the boundary counts can lie (e.g. claim values below a
  // window already at the universe floor); the attempt cap and edge guards
  // divert those cases to BestEffortResolve.
  const int max_attempts =
      static_cast<int>((range_max_ - range_min_ + 1) / span()) + 8;
  for (int attempt = 0;; ++attempt) {
    if (attempt > max_attempts) {
      WSNQ_CHECK(net->lossy());
      BestEffortResolve(net, values_by_vertex);
      return;
    }
    if (k_ <= below_) {
      if (options_.mode == RefineMode::kSlip) {
        if (window_lo_ <= range_min_) {
          WSNQ_CHECK(net->lossy());
          BestEffortResolve(net, values_by_vertex);
          return;
        }
        Slip(net, values_by_vertex, /*down=*/true);
        continue;
      }
      if (window_lo_ <= range_min_) {
        WSNQ_CHECK(net->lossy());
        BestEffortResolve(net, values_by_vertex);
        return;
      }
      // Hierarchical: drill the whole lower boundary region, then zoom out.
      DrillOptions drill;
      drill.buckets = buckets_;
      drill.direct_capacity =
          options_.direct_retrieval
              ? net->packetizer().ValuesPerPacket(wire_.value_bits)
              : 0;
      const DrillResult result =
          BAryDrill(net, values_by_vertex, range_min_, window_lo_,
                    /*below_lb=*/0, k_, drill, wire_, /*less_than_ub=*/-1,
                    &ws_);
      refinements_ += result.rounds;
      quantile_ = result.quantile;
      counts_ = result.counts;
      Reestablish(net, values_by_vertex,
                  AlignWindowLo(quantile_ - span() / 2));
      return;
    }
    int64_t in_window = 0;
    for (int64_t c : hist_) in_window += c;
    if (k_ > below_ + in_window) {
      if (window_lo_ + span() > range_max_) {
        // The window already covers the top of the universe: the missing
        // ranks are a loss artifact.
        WSNQ_CHECK(net->lossy());
        BestEffortResolve(net, values_by_vertex);
        return;
      }
      if (options_.mode == RefineMode::kSlip) {
        Slip(net, values_by_vertex, /*down=*/false);
        continue;
      }
      DrillOptions drill;
      drill.buckets = buckets_;
      drill.direct_capacity =
          options_.direct_retrieval
              ? net->packetizer().ValuesPerPacket(wire_.value_bits)
              : 0;
      const DrillResult result = BAryDrill(
          net, values_by_vertex, window_lo_ + span(), range_max_ + 1,
          below_ + in_window, k_, drill, wire_, /*less_than_ub=*/-1, &ws_);
      refinements_ += result.rounds;
      quantile_ = result.quantile;
      counts_ = result.counts;
      Reestablish(net, values_by_vertex,
                  AlignWindowLo(quantile_ - span() / 2));
      return;
    }
    // Inside the window: find the bucket.
    int64_t cl = below_;
    for (int j = 0; j < buckets_; ++j) {
      const int64_t c = hist_[static_cast<size_t>(j)];
      if (cl + c >= k_) {
        ResolveBucket(net, values_by_vertex, j, cl);
        return;
      }
      cl += c;
    }
    WSNQ_CHECK(false);  // unreachable: rank was inside the window
  }
}

}  // namespace wsnq
