// HBC — Histogram-Based Continuous quantile queries (§4.1, the paper's
// first contribution): POS's validation machinery combined with the
// cost-model-driven b-ary histogram refinement of the authors' snapshot
// work, instead of POS's plain binary search.
//
// Per round:
//  1. validation convergecast relative to the current filter; the modified
//     one-value hint of §5.1.6 (max distance between the old quantile and
//     any state-changing value) bounds the refinement interval;
//  2. if (l, e, g) no longer certify the filter, the root b-ary drills the
//     hinted interval (BAryDrill), optionally finishing with a direct value
//     request;
//  3. the new quantile is broadcast iff it changed.
//
// The §4.1.2 variant ("eliminate threshold broadcasts") replaces the single
// threshold filter with the interval of the last refinement request, which
// every node saw anyway. It never broadcasts the quantile — at the price of
// re-refining the (narrow) filter interval whenever it is wider than one
// value, and it cannot use direct retrieval (the paper notes the two
// improvements do not compose).
//
// The number of buckets b is computed once from the Lambert-W cost model
// (§4.1: "we did not recompute b during each round since ... the difference
// in performance was marginal").

#ifndef WSNQ_ALGO_HBC_H_
#define WSNQ_ALGO_HBC_H_

#include <cstdint>
#include <vector>

#include "algo/common.h"
#include "algo/protocol.h"
#include "algo/snapshot_bary.h"

namespace wsnq {

/// Histogram-Based Continuous quantile protocol.
class HbcProtocol : public QuantileProtocol {
 public:
  struct Options {
    /// Histogram buckets; 0 = derive from the cost model (RoundedBExact).
    int buckets = 0;
    /// Request candidate values directly once they fit in one packet.
    bool direct_retrieval = true;
    /// §4.1.2: interval filter, no threshold broadcasts. Forces
    /// direct_retrieval off.
    bool eliminate_threshold_broadcast = false;
    /// Carry the one-value max-distance hint in validation packets.
    bool use_hints = true;
  };

  HbcProtocol(int64_t k, int64_t range_min, int64_t range_max,
              const WireFormat& wire, const Options& options);

  const char* name() const override {
    return options_.eliminate_threshold_broadcast ? "HBC-NTB" : "HBC";
  }
  void RunRound(Network* net, const std::vector<int64_t>& values_by_vertex,
                int64_t round) override;
  int64_t quantile() const override { return quantile_; }
  /// Basic variant: counts relative to the threshold filter (== quantile).
  /// NTB variant: counts relative to the interval filter [filter_lb,
  /// filter_ub) — l below it, e inside, g at/above filter_ub.
  RootCounts root_counts() const override { return counts_; }
  int64_t refinements_last_round() const override { return refinements_; }

  /// Number of buckets in use (from the cost model unless overridden).
  int buckets() const { return buckets_; }
  /// NTB interval filter bounds; meaningful only for that variant.
  int64_t filter_lb() const { return filter_lb_; }
  int64_t filter_ub() const { return filter_ub_; }

  /// Adopts foreign continuous state (threshold filter + bookkeeping); used
  /// by the adaptive switching protocol to change algorithms mid-query
  /// without re-initialization (§4.2). Basic variant only.
  void AdoptState(int64_t filter, const RootCounts& counts,
                  std::vector<int64_t> prev_values);

 private:
  void Initialize(Network* net, const std::vector<int64_t>& values);
  void RunBasicRound(Network* net, const std::vector<int64_t>& values);
  void RunNtbRound(Network* net, const std::vector<int64_t>& values);

  int64_t k_;
  int64_t range_min_;
  int64_t range_max_;
  WireFormat wire_;
  Options options_;
  int buckets_ = 0;

  int64_t quantile_ = 0;
  RootCounts counts_;
  std::vector<int64_t> prev_values_;
  /// Network::tree_epoch() the state was initialized under; a mismatch
  /// (fault-driven tree repair) forces re-initialization.
  int64_t tree_epoch_ = 0;
  int64_t refinements_ = 0;

  // Basic variant filter.
  int64_t filter_ = 0;
  // NTB variant interval filter [filter_lb_, filter_ub_).
  int64_t filter_lb_ = 0;
  int64_t filter_ub_ = 0;

  WaveWorkspace ws_;
};

}  // namespace wsnq

#endif  // WSNQ_ALGO_HBC_H_
