// Single-refinement continuous quantile protocol — the paper's reference
// [19], reconstructed from §3.1's description: "their continuous solution
// is similar to POS, however similar to our IQ algorithm the number of
// refinement iterations is reduced to one. However in contrast to this
// solution we aim at completely avoiding refinements by employing
// heuristics [the window Ξ]."
//
// Concretely: POS's validation (counters + hints), but when the filter is
// invalidated the root fetches the exact values it is missing in ONE
// bounded convergecast — f1 = l-k+1 largest values below the filter, or
// f2 = k-l-e smallest above it — instead of bisecting. This is IQ without
// the window, which makes it the ablation baseline that isolates what Ξ
// buys: POS-SR pays one refinement on every quantile movement, IQ pays
// validation values to skip it.

#ifndef WSNQ_ALGO_POS_SR_H_
#define WSNQ_ALGO_POS_SR_H_

#include <cstdint>
#include <vector>

#include "algo/common.h"
#include "algo/protocol.h"

namespace wsnq {

/// POS validation + one direct value-fetching refinement per movement.
class PosSrProtocol : public QuantileProtocol {
 public:
  struct Options {
    /// Bound refinement intervals with the one-value max-distance hint.
    bool use_hints = true;
  };

  PosSrProtocol(int64_t k, int64_t range_min, int64_t range_max,
                const WireFormat& wire, const Options& options);

  const char* name() const override { return "POS-SR"; }
  void RunRound(Network* net, const std::vector<int64_t>& values_by_vertex,
                int64_t round) override;
  int64_t quantile() const override { return quantile_; }
  RootCounts root_counts() const override { return counts_; }
  int64_t refinements_last_round() const override { return refinements_; }

 private:
  void Initialize(Network* net, const std::vector<int64_t>& values);

  int64_t k_;
  int64_t range_min_;
  int64_t range_max_;
  WireFormat wire_;
  Options options_;

  int64_t quantile_ = 0;
  int64_t filter_ = 0;
  RootCounts counts_;
  std::vector<int64_t> prev_values_;
  /// Network::tree_epoch() the state was initialized under; a mismatch
  /// (fault-driven tree repair) forces re-initialization.
  int64_t tree_epoch_ = 0;
  int64_t refinements_ = 0;
  WaveWorkspace ws_;
};

}  // namespace wsnq

#endif  // WSNQ_ALGO_POS_SR_H_
