// Central factory for quantile protocols, keyed by the algorithm names used
// in the paper's evaluation (§5.1.6). Benches, examples, and tests create
// protocols through this registry so they all agree on default options.

#ifndef WSNQ_ALGO_REGISTRY_H_
#define WSNQ_ALGO_REGISTRY_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "algo/common.h"
#include "algo/protocol.h"
#include "util/status.h"

namespace wsnq {

/// The algorithms compared in §5 plus this repo's extensions.
enum class AlgorithmKind {
  kTag,
  kPos,
  kPosSr,      ///< [19]-style: POS validation + one direct refinement
  kHbc,
  kHbcNtb,     ///< §4.1.2 variant (ablation)
  kIq,
  kLcllH,
  kLcllS,
  kSnapshot,   ///< stand-alone snapshot b-ary search ([21])
  kSwitching,  ///< adaptive IQ/HBC hybrid (§4.2 future work)
  kQdigest,    ///< approximate: q-digest aggregation ([26]); inexact
  kGk,         ///< approximate: Greenwald-Khanna summaries ([10]); inexact
  kSampling,   ///< probabilistic: Bernoulli sampling ([1,4]); inexact
};

/// Paper-style display name ("TAG", "POS", "HBC", ...).
const char* AlgorithmName(AlgorithmKind kind);

/// Parses a display name; returns NotFound for unknown names.
StatusOr<AlgorithmKind> ParseAlgorithmName(const char* name);

/// The algorithm set of the paper's figures, in plotting order.
std::vector<AlgorithmKind> PaperAlgorithms();

/// Creates a protocol instance with the evaluation-default options
/// (hints on, direct sends on, cost-model bucket count, IQ m = 6).
std::unique_ptr<QuantileProtocol> MakeProtocol(AlgorithmKind kind, int64_t k,
                                               int64_t range_min,
                                               int64_t range_max,
                                               const WireFormat& wire);

}  // namespace wsnq

#endif  // WSNQ_ALGO_REGISTRY_H_
