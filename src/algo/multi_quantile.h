// Continuous multi-quantile tracking (extension): §2 notes the solution "is
// in fact independent of the value of k", so monitoring several quantiles —
// say the quartiles (phi = 0.25, 0.5, 0.75) — is a natural next step. The
// naive approach runs one IQ instance per rank and pays one validation
// packet per rank per reporting node. MultiIqProtocol instead runs the IQ
// machinery for all ranks inside a single shared convergecast: one packet
// per node per round carries the movement counters, hints, and window
// values of every tracked rank, so the per-message header — the dominant
// fixed cost — is paid once instead of m times (bench/abl_multiq measures
// the saving).

#ifndef WSNQ_ALGO_MULTI_QUANTILE_H_
#define WSNQ_ALGO_MULTI_QUANTILE_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "algo/common.h"
#include "algo/protocol.h"

namespace wsnq {

/// IQ-style continuous tracking of several ranks at once.
class MultiIqProtocol {
 public:
  struct Options {
    /// History length m of the per-rank window adaptation (Eq. 1-2).
    int m = 6;
    /// Initial window half-width scaling constant c (§4.2.1).
    double init_c = 1.0;
    /// Use one-value max-distance hints per rank.
    bool use_hints = true;
  };

  /// Tracks each 1-based rank in `ks` (must be strictly increasing).
  MultiIqProtocol(std::vector<int64_t> ks, int64_t range_min,
                  int64_t range_max, const WireFormat& wire,
                  const Options& options);

  /// Executes round `round`; same driving contract as QuantileProtocol.
  void RunRound(Network* net, const std::vector<int64_t>& values_by_vertex,
                int64_t round);

  int num_ranks() const { return static_cast<int>(ks_.size()); }
  int64_t rank(int i) const { return ks_[static_cast<size_t>(i)]; }
  /// The exact rank(i)-th smallest value after the most recent round.
  int64_t quantile(int i) const {
    return states_[static_cast<size_t>(i)].filter;
  }
  /// Refinement convergecasts in the most recent round (across all ranks).
  int64_t refinements_last_round() const { return refinements_; }

 private:
  /// Per-rank continuous state (the fields of a single IQ instance).
  struct RankState {
    int64_t k = 0;
    int64_t filter = 0;
    int64_t xi_l = 0;
    int64_t xi_r = 0;
    RootCounts counts;
    std::deque<int64_t> deltas;
  };

  void Initialize(Network* net, const std::vector<int64_t>& values);
  /// Root-side IQ case analysis for one rank, given its sorted window
  /// multiset and the validation hint; may run one refinement.
  int64_t ResolveRank(Network* net, const std::vector<int64_t>& values,
                      RankState* state, const std::vector<int64_t>& window,
                      const ValidationAgg& validation);
  void PushDelta(RankState* state, int64_t delta);

  std::vector<int64_t> ks_;
  int64_t range_min_;
  int64_t range_max_;
  WireFormat wire_;
  Options options_;
  std::vector<RankState> states_;
  std::vector<int64_t> prev_values_;
  /// Network::tree_epoch() the state was initialized under; a mismatch
  /// (fault-driven tree repair) forces re-initialization.
  int64_t tree_epoch_ = 0;
  int64_t refinements_ = 0;
  WaveWorkspace ws_;
};

}  // namespace wsnq

#endif  // WSNQ_ALGO_MULTI_QUANTILE_H_
