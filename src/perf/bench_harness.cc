#include "perf/bench_harness.h"

#include <algorithm>
#include <cmath>

#include "util/stats.h"
#include "util/trace.h"

namespace wsnq {
namespace perf {

RepStats SummarizeSamples(std::vector<double> samples_s) {
  RepStats stats;
  stats.reps = static_cast<int>(samples_s.size());
  if (samples_s.empty()) return stats;
  stats.median_s = Median(samples_s);
  std::vector<double> deviations;
  deviations.reserve(samples_s.size());
  RunningStat running;
  for (double s : samples_s) {
    deviations.push_back(std::abs(s - stats.median_s));
    running.Add(s);
  }
  stats.mad_s = Median(std::move(deviations));
  stats.min_s = running.min();
  stats.max_s = running.max();
  stats.mean_s = running.mean();
  stats.cv = running.mean() > 0.0 ? running.stddev() / running.mean() : 0.0;
  stats.samples_s = std::move(samples_s);
  return stats;
}

BenchHarness::BenchHarness(int warmup, int reps)
    : warmup_(std::max(warmup, 0)), reps_(std::max(reps, 1)) {}

RepStats BenchHarness::Measure(const std::function<int()>& body,
                               int* exit_code) const {
  *exit_code = 0;
  for (int i = 0; i < warmup_; ++i) {
    const int code = body();
    if (code != 0) {
      *exit_code = code;
      return SummarizeSamples({});
    }
  }
  std::vector<double> samples;
  samples.reserve(static_cast<size_t>(reps_));
  for (int i = 0; i < reps_; ++i) {
    const double start = prof::WallSeconds();
    const int code = body();
    samples.push_back(prof::WallSeconds() - start);
    if (code != 0) {
      *exit_code = code;
      break;
    }
  }
  return SummarizeSamples(std::move(samples));
}

}  // namespace perf
}  // namespace wsnq
