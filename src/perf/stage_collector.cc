#include "perf/stage_collector.h"

#include <atomic>
#include <memory>
#include <vector>

#include "perf/alloc_observer.h"
#include "perf/counters.h"
#include "util/check.h"

namespace wsnq {
namespace perf {

namespace {

struct SpanSnapshot {
  CounterReading counters;
  AllocSnapshot allocs;
};

/// Per-thread open-span stack: BeginSpan pushes, EndSpan pops. Spans are
/// RAII ScopedTimers, so begin/end strictly nest per thread.
thread_local std::vector<SpanSnapshot> t_spans;

/// Per-thread counter group, opened on the thread's first span. Unique_ptr
/// so a thread that never profiles never opens fds.
thread_local std::unique_ptr<CounterSet> t_counters;

std::atomic<bool> g_counters_observed{false};

CounterSet& ThreadCounters() {
  if (t_counters == nullptr) {
    t_counters = std::make_unique<CounterSet>();
    if (t_counters->ok()) {
      g_counters_observed.store(true, std::memory_order_relaxed);
    }
  }
  return *t_counters;
}

/// Delta of one optional counter: -1 (unavailable) on either side keeps
/// the field out of the charge.
int64_t Delta(int64_t begin, int64_t end) {
  if (begin < 0 || end < 0) return 0;
  return end >= begin ? end - begin : 0;
}

}  // namespace

uint64_t StageCollector::BeginSpan() {
  SpanSnapshot snapshot;
  snapshot.counters = ThreadCounters().Read();
  snapshot.allocs = ThreadAllocSnapshot();
  t_spans.push_back(snapshot);
  return t_spans.size() - 1;
}

void StageCollector::EndSpan(uint64_t token, prof::StageExtras* extras) {
  WSNQ_CHECK_LT(token, t_spans.size());
  WSNQ_CHECK_EQ(token, t_spans.size() - 1);  // spans strictly nest (RAII)
  const SpanSnapshot begin = t_spans.back();
  t_spans.pop_back();
  const CounterReading end = ThreadCounters().Read();
  if (begin.counters.valid && end.valid) {
    extras->counter_spans = 1;
    extras->cycles = Delta(begin.counters.cycles, end.cycles);
    extras->instructions = Delta(begin.counters.instructions,
                                 end.instructions);
    extras->cache_misses = Delta(begin.counters.cache_misses,
                                 end.cache_misses);
    extras->branch_misses = Delta(begin.counters.branch_misses,
                                  end.branch_misses);
    extras->task_clock_s =
        static_cast<double>(
            Delta(begin.counters.task_clock_ns, end.task_clock_ns)) *
        1e-9;
  }
  if (AllocHooksCompiledIn()) {
    const AllocSnapshot now = ThreadAllocSnapshot();
    extras->alloc_spans = 1;
    extras->alloc_count = now.count - begin.allocs.count;
    extras->alloc_bytes = now.bytes - begin.allocs.bytes;
  }
}

bool StageCollector::CountersObserved() {
  return g_counters_observed.load(std::memory_order_relaxed);
}

std::string InstallStageCollector() {
  static StageCollector collector;
  prof::SetStageObserver(&collector);
  // Probe this thread's counters now so the returned status reflects what
  // spans will actually see (and so the common single-threaded case opens
  // its fds outside any timed region).
  CounterSet& counters = ThreadCounters();
  std::string status = "# perf counters=";
  if (counters.ok()) {
    status += "on";
  } else {
    status += "off (" + counters.error() + "; wall-clock-only stats)";
  }
  status += AllocHooksCompiledIn() ? " alloc_hooks=on" : " alloc_hooks=off";
  return status;
}

void UninstallStageCollectorForTest() { prof::SetStageObserver(nullptr); }

void ResetThreadCountersForTest() {
  WSNQ_CHECK(t_spans.empty());  // never drop counters under an open span
  t_counters.reset();
}

}  // namespace perf
}  // namespace wsnq
