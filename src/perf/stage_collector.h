// Bridges src/perf/ measurements into the prof:: stage profile
// (docs/observability.md, "Hardware counters, allocation accounting &
// regression gating").
//
// StageCollector implements prof::StageObserver: at every profile span's
// begin it snapshots the calling thread's hardware counters
// (perf/counters.h) and allocation totals (perf/alloc_observer.h), and at
// span end it charges the deltas to the span's stage. Installed once per
// process (InstallStageCollector, called by bench::ParseCommonFlags and
// wsnq_sim when --profile is requested); threads lazily open their own
// CounterSet on first span. Where perf_event_open is denied the collector
// degrades to alloc-only (or to a pure pass-through when the alloc hooks
// are compiled out too) — `--profile` output is then exactly the
// wall-clock-only profile this repo has always produced.

#ifndef WSNQ_PERF_STAGE_COLLECTOR_H_
#define WSNQ_PERF_STAGE_COLLECTOR_H_

#include <cstdint>
#include <string>

#include "util/trace.h"

namespace wsnq {
namespace perf {

/// prof::StageObserver backed by per-thread CounterSets and the alloc
/// hooks. Thread-safe: all mutable state is thread-local.
class StageCollector : public prof::StageObserver {
 public:
  uint64_t BeginSpan() override;
  void EndSpan(uint64_t token, prof::StageExtras* extras) override;

  /// True when at least one thread managed to open hardware counters.
  static bool CountersObserved();
};

/// Installs the process-wide StageCollector (idempotent). Returns a
/// one-line status suitable for stderr: which of counters/alloc hooks are
/// live, and why counters are absent when they are.
std::string InstallStageCollector();

/// Detaches the collector again (tests only).
void UninstallStageCollectorForTest();

/// Drops the calling thread's lazily opened CounterSet (tests only): the
/// next span re-opens it under the current
/// CounterSet::ForceUnavailableForTest state, which makes the
/// counter-denied path reachable on a thread whose counters already
/// opened naturally. Must not be called while a profile span is open.
void ResetThreadCountersForTest();

}  // namespace perf
}  // namespace wsnq

#endif  // WSNQ_PERF_STAGE_COLLECTOR_H_
