// Allocation accounting for the profiling layer (docs/observability.md,
// "Allocation accounting").
//
// When the tree is configured with -DWSNQ_PERF_ALLOC=ON (CMake option
// WSNQ_PERF_ALLOC, mirroring WSNQ_TRACING's compile-out discipline), this
// translation unit replaces the global operator new/delete with thin
// wrappers that bump two thread-local counters — allocations and bytes
// requested — before delegating to malloc/free. perf::StageCollector
// snapshots the counters at span begin/end and charges the delta to the
// enclosing profile stage, which makes "how much does this stage
// allocate?" (the ROADMAP's pointer-chasing-vs-SoA question about
// per-node protocol state) a measured number instead of a guess.
//
// The hooks never allocate, never lock, and never read a clock: a build
// with them enabled produces byte-identical deterministic stdout (pinned
// by the bench stdout-determinism ctest leg). They are a measurement
// build, not a default: don't combine with sanitizer presets — ASan wants
// to intercept allocation itself (src/CMakeLists.txt warns).

#ifndef WSNQ_PERF_ALLOC_OBSERVER_H_
#define WSNQ_PERF_ALLOC_OBSERVER_H_

#include <cstdint>

namespace wsnq {
namespace perf {

/// Monotonic per-thread allocation totals since thread start. Zeros (and
/// never advancing) when the hooks are compiled out.
struct AllocSnapshot {
  int64_t count = 0;
  int64_t bytes = 0;
};

/// True when this build replaces operator new/delete (WSNQ_PERF_ALLOC).
bool AllocHooksCompiledIn();

/// Reads the calling thread's allocation totals.
AllocSnapshot ThreadAllocSnapshot();

}  // namespace perf
}  // namespace wsnq

#endif  // WSNQ_PERF_ALLOC_OBSERVER_H_
