#include "perf/counters.h"

#include <atomic>
#include <cerrno>
#include <cstring>

#if defined(__linux__) && __has_include(<linux/perf_event.h>)
#define WSNQ_PERF_COUNTERS_SUPPORTED 1
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#else
#define WSNQ_PERF_COUNTERS_SUPPORTED 0
#endif

namespace wsnq {
namespace perf {

namespace {

std::atomic<bool> g_force_unavailable{false};

#if WSNQ_PERF_COUNTERS_SUPPORTED

struct EventSpec {
  uint32_t type;
  uint64_t config;
  const char* name;
};

// Order matches CounterReading's fields; task-clock last so a PMU-less
// host (software events only) still yields a partially ok() set.
constexpr EventSpec kEventSpecs[] = {
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES, "cycles"},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS, "instructions"},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES, "cache-misses"},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES, "branch-misses"},
    {PERF_TYPE_SOFTWARE, PERF_COUNT_SW_TASK_CLOCK, "task-clock"},
};

int OpenEvent(const EventSpec& spec) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.type = spec.type;
  attr.size = sizeof(attr);
  attr.config = spec.config;
  attr.disabled = 0;
  // Counting user-space only keeps the syscall usable at
  // kernel.perf_event_paranoid <= 2 (the common unprivileged setting).
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  // pid = 0, cpu = -1: this thread, any CPU it migrates to.
  return static_cast<int>(
      syscall(SYS_perf_event_open, &attr, 0, -1, -1, 0));
}

int64_t ReadEvent(int fd) {
  if (fd < 0) return -1;
  uint64_t value = 0;
  const ssize_t n = read(fd, &value, sizeof(value));
  if (n != static_cast<ssize_t>(sizeof(value))) return -1;
  return static_cast<int64_t>(value);
}

#endif  // WSNQ_PERF_COUNTERS_SUPPORTED

}  // namespace

CounterSet::CounterSet() {
  for (int i = 0; i < kEvents; ++i) fds_[i] = -1;
  if (g_force_unavailable.load(std::memory_order_relaxed)) {
    error_ = "perf_event_open: EPERM (forced for test)";
    return;
  }
#if WSNQ_PERF_COUNTERS_SUPPORTED
  int first_errno = 0;
  for (int i = 0; i < kEvents; ++i) {
    fds_[i] = OpenEvent(kEventSpecs[i]);
    if (fds_[i] >= 0) {
      ok_ = true;
    } else if (first_errno == 0) {
      first_errno = errno;
    }
  }
  if (!ok_) {
    error_ = std::string("perf_event_open: ") +
             (first_errno != 0 ? std::strerror(first_errno) : "failed");
  }
#else
  error_ = "perf_event_open: unsupported platform";
#endif
}

CounterSet::~CounterSet() {
#if WSNQ_PERF_COUNTERS_SUPPORTED
  for (int i = 0; i < kEvents; ++i) {
    if (fds_[i] >= 0) close(fds_[i]);
  }
#endif
}

CounterReading CounterSet::Read() const {
  CounterReading reading;
  if (!ok_) return reading;
#if WSNQ_PERF_COUNTERS_SUPPORTED
  reading.valid = true;
  reading.cycles = ReadEvent(fds_[0]);
  reading.instructions = ReadEvent(fds_[1]);
  reading.cache_misses = ReadEvent(fds_[2]);
  reading.branch_misses = ReadEvent(fds_[3]);
  reading.task_clock_ns = ReadEvent(fds_[4]);
#endif
  return reading;
}

bool CounterSet::Supported() { return WSNQ_PERF_COUNTERS_SUPPORTED != 0; }

void CounterSet::ForceUnavailableForTest(bool force) {
  g_force_unavailable.store(force, std::memory_order_relaxed);
}

}  // namespace perf
}  // namespace wsnq
