#include "perf/alloc_observer.h"

#if defined(WSNQ_PERF_ALLOC) && WSNQ_PERF_ALLOC

#include <cstdlib>
#include <new>

namespace wsnq {
namespace perf {
namespace {

// Bumped by every replaced operator new below. Thread-local so the hooks
// stay lock-free and per-thread attribution (StageCollector's span deltas)
// needs no cross-thread reconciliation.
thread_local int64_t t_alloc_count = 0;
thread_local int64_t t_alloc_bytes = 0;

inline void Account(std::size_t size) {
  ++t_alloc_count;
  t_alloc_bytes += static_cast<int64_t>(size);
}

void* AllocOrThrow(std::size_t size) {
  Account(size);
  // malloc(0) may return nullptr legally; operator new must not.
  void* p = std::malloc(size != 0 ? size : 1);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* AllocAligned(std::size_t size, std::size_t alignment) {
  Account(size);
  void* p = nullptr;
  if (posix_memalign(&p, alignment, size != 0 ? size : alignment) != 0) {
    return nullptr;
  }
  return p;
}

}  // namespace

bool AllocHooksCompiledIn() { return true; }

AllocSnapshot ThreadAllocSnapshot() {
  AllocSnapshot snapshot;
  snapshot.count = t_alloc_count;
  snapshot.bytes = t_alloc_bytes;
  return snapshot;
}

}  // namespace perf
}  // namespace wsnq

// --- Global operator new/delete replacements ------------------------------
//
// All forms delegate to malloc/posix_memalign so throwing, nothrow, array,
// aligned, and sized variants stay mutually consistent. Deletes are not
// counted: the observatory charges allocation pressure (count/bytes
// requested), which is what the SoA-vs-pointer-chasing comparison needs.

void* operator new(std::size_t size) { return wsnq::perf::AllocOrThrow(size); }

void* operator new[](std::size_t size) {
  return wsnq::perf::AllocOrThrow(size);
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  wsnq::perf::Account(size);
  return std::malloc(size != 0 ? size : 1);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  wsnq::perf::Account(size);
  return std::malloc(size != 0 ? size : 1);
}

void* operator new(std::size_t size, std::align_val_t alignment) {
  void* p = wsnq::perf::AllocAligned(size, static_cast<std::size_t>(alignment));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size, std::align_val_t alignment) {
  void* p = wsnq::perf::AllocAligned(size, static_cast<std::size_t>(alignment));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, std::align_val_t alignment,
                   const std::nothrow_t&) noexcept {
  return wsnq::perf::AllocAligned(size, static_cast<std::size_t>(alignment));
}

void* operator new[](std::size_t size, std::align_val_t alignment,
                     const std::nothrow_t&) noexcept {
  return wsnq::perf::AllocAligned(size, static_cast<std::size_t>(alignment));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t, const std::nothrow_t&)
    noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t, const std::nothrow_t&)
    noexcept {
  std::free(p);
}

#else  // !WSNQ_PERF_ALLOC

namespace wsnq {
namespace perf {

bool AllocHooksCompiledIn() { return false; }

AllocSnapshot ThreadAllocSnapshot() { return AllocSnapshot{}; }

}  // namespace perf
}  // namespace wsnq

#endif  // WSNQ_PERF_ALLOC
