// Hardware performance counters for the profiling layer, built on Linux
// perf_event_open (docs/observability.md, "Hardware counters").
//
// A CounterSet opens one per-thread counter group — cycles, instructions,
// cache misses, branch misses, and the software task clock — and reads
// point-in-time snapshots that perf::StageCollector turns into per-span
// deltas. Availability is a property of the host, not of the build:
// containers commonly deny the syscall (kernel.perf_event_paranoid, 1-CPU
// cgroups, seccomp), and some VMs expose no PMU at all, so every event is
// individually optional and a fully denied set degrades to ok() == false
// with a recorded reason. Callers treat that as "wall-clock-only
// profiling", never as an error — the fallback is a first-class, tested
// path (tests/perf_test.cc).
//
// This file is part of src/perf/, the sole sanctioned home of
// perf_event_open / raw timing syscalls outside the historical allowlist
// (wsnq-lint rule `perf-syscall`, wsnq-analyzer rule `ban-perf-syscall`).

#ifndef WSNQ_PERF_COUNTERS_H_
#define WSNQ_PERF_COUNTERS_H_

#include <cstdint>
#include <string>

namespace wsnq {
namespace perf {

/// One point-in-time reading of the calling thread's counters. Events the
/// kernel denied (or that the platform lacks) read as -1; task_clock_ns is
/// a software event and is available whenever the syscall itself is.
struct CounterReading {
  /// False when the whole set is unavailable (every field is -1).
  bool valid = false;
  int64_t cycles = -1;
  int64_t instructions = -1;
  int64_t cache_misses = -1;
  int64_t branch_misses = -1;
  int64_t task_clock_ns = -1;
};

/// A set of per-thread perf_event file descriptors. Not thread-safe and
/// thread-affine: construct and Read() on the same thread (StageCollector
/// keeps one per worker in a thread_local).
class CounterSet {
 public:
  /// Opens the counters for the calling thread. Never fails hard: check
  /// ok() afterwards; error() says why the set (or part of it) is missing.
  CounterSet();
  ~CounterSet();
  CounterSet(const CounterSet&) = delete;
  CounterSet& operator=(const CounterSet&) = delete;

  /// True when at least one event opened; Read() then yields valid
  /// readings for exactly the opened events.
  bool ok() const { return ok_; }
  /// Human-readable reason when !ok() (e.g. "perf_event_open: EPERM"),
  /// empty otherwise.
  const std::string& error() const { return error_; }

  /// Reads the current counter values (valid == ok()).
  CounterReading Read() const;

  /// Compiled-in platform support (Linux with <linux/perf_event.h>).
  static bool Supported();

  /// Test seam: when set, every subsequent CounterSet construction behaves
  /// as if perf_event_open returned EPERM — the graceful-fallback path the
  /// dev container may or may not take naturally becomes deterministic
  /// under test (tests/perf_test.cc).
  static void ForceUnavailableForTest(bool force);

 private:
  static constexpr int kEvents = 5;
  int fds_[kEvents];
  bool ok_ = false;
  std::string error_;
};

}  // namespace perf
}  // namespace wsnq

#endif  // WSNQ_PERF_COUNTERS_H_
