// Warmup + repetition measurement protocol with robust statistics for the
// bench/ binaries (docs/observability.md, "Benchmark harness").
//
// A single-shot wall clock cannot tell a regression from scheduler noise;
// the harness runs a measured body `warmup + reps` times and summarizes
// the rep samples with estimators that are robust to the occasional
// outlier a busy CI box produces: median (central tendency), MAD (median
// absolute deviation — the noise scale tools/bench_compare.py gates on),
// min (the contention-free floor), plus mean/max/CV for context. Defaults
// (reps = 1, warmup = 0) reproduce the historical single-shot behavior
// exactly, so benches pay nothing until --reps is requested.

#ifndef WSNQ_PERF_BENCH_HARNESS_H_
#define WSNQ_PERF_BENCH_HARNESS_H_

#include <functional>
#include <vector>

namespace wsnq {
namespace perf {

/// Robust summary of one bench's repetition samples (seconds).
struct RepStats {
  int reps = 0;
  double median_s = 0.0;
  /// Median absolute deviation from the median — the scale
  /// bench_compare.py multiplies by k for its noise-aware threshold.
  double mad_s = 0.0;
  double min_s = 0.0;
  double max_s = 0.0;
  double mean_s = 0.0;
  /// Coefficient of variation (stddev / mean); 0 for a single rep.
  double cv = 0.0;
  std::vector<double> samples_s;
};

/// Pure summary of pre-measured samples (unit-testable without a clock).
RepStats SummarizeSamples(std::vector<double> samples_s);

/// Runs `body` warmup times unmeasured, then reps times measured (wall
/// clock via prof::WallSeconds), and returns the summary. `body` returns
/// an exit code; a nonzero code aborts the protocol immediately and is
/// stored in *exit_code (remaining reps are skipped, the partial samples
/// are summarized). reps < 1 is clamped to 1; warmup < 0 to 0.
class BenchHarness {
 public:
  BenchHarness(int warmup, int reps);

  int warmup() const { return warmup_; }
  int reps() const { return reps_; }

  RepStats Measure(const std::function<int()>& body, int* exit_code) const;

 private:
  int warmup_;
  int reps_;
};

}  // namespace perf
}  // namespace wsnq

#endif  // WSNQ_PERF_BENCH_HARNESS_H_
