#!/usr/bin/env python3
"""Records a performance snapshot of the tree as BENCH_<date>.json.

Two measurements, deliberately cheap enough to run on every perf-relevant
PR (a couple of minutes on one core):

  * the micro primitive benchmarks (build/bench/micro_primitives,
    Google Benchmark JSON) — per-op costs of the sketch/codec hot paths;
  * one end-to-end figure sweep (build/bench/fig6_vary_n) at reduced
    WSNQ_RUNS/WSNQ_ROUNDS — the wall clock of the whole simulator stack,
    parsed from the bench's "# timing ..." stderr footer;
  * one lossy sweep (build/bench/fig_loss_sweep) at the same reduced
    scale — the same stack with the fault subsystem hot (Gilbert/iid link
    chains, ARQ retransmission loops), so reliability-path regressions
    are visible separately from the lossless baseline;
  * the fig10 pressure sweep (build/bench/fig10_pressure) run twice, with
    WSNQ_SCENARIO_CACHE=0 and =1, parsing the --profile stage report —
    scenario-construction seconds (experiment/build_scenario plus, cached,
    experiment/prepare_cache) and total wall clock for both, with the
    cache-off/cache-on construction ratio recorded as the speedup the
    scenario cache (core/scenario_cache.h) is buying.

Snapshots are committed next to each other at the repo root, so a
regression shows up as a diff between BENCH_<old>.json and BENCH_<new>.json
rather than as folklore. Compare with:

  python3 -c "import json;a,b=[json.load(open(p)) for p in
      ('BENCH_A.json','BENCH_B.json')];print(a['fig6']['wall_s'],
      b['fig6']['wall_s'])"

Usage:
  tools/bench_snapshot.py [--build-dir=build] [--date=YYYY-MM-DD]
                          [--runs=4] [--rounds=60] [--out=PATH]

--date exists so a snapshot regenerated while reproducing an old result
can overwrite the original file instead of minting a new day.
"""

import argparse
import datetime
import json
import os
import re
import subprocess
import sys

TIMING_RE = re.compile(
    r"# timing figure=(?P<figure>\S+) threads=(?P<threads>\d+) "
    r"runs=(?P<runs>\d+) wall_s=(?P<wall_s>[0-9.]+)")

PROFILE_RE = re.compile(
    r"# profile stage=(?P<stage>\S+) count=(?P<count>\d+) "
    r"total_s=(?P<total_s>[0-9.]+)")


def run_micro(build_dir):
    """Returns the micro benchmark entries (name, real/cpu time, unit)."""
    binary = os.path.join(build_dir, "bench", "micro_primitives")
    out = subprocess.run([binary, "--benchmark_format=json"],
                         check=True, capture_output=True, text=True)
    report = json.loads(out.stdout)
    return {
        "num_cpus": report["context"]["num_cpus"],
        "mhz_per_cpu": report["context"]["mhz_per_cpu"],
        "benchmarks": [
            {
                "name": b["name"],
                "real_time": b["real_time"],
                "cpu_time": b["cpu_time"],
                "time_unit": b["time_unit"],
            }
            for b in report["benchmarks"]
        ],
    }


def run_sweep(build_dir, bench_name, runs, rounds):
    """Runs one figure sweep binary and parses the stderr timing footer."""
    binary = os.path.join(build_dir, "bench", bench_name)
    env = dict(os.environ, WSNQ_RUNS=str(runs), WSNQ_ROUNDS=str(rounds))
    out = subprocess.run([binary, "--threads=1"], check=True,
                         capture_output=True, text=True, env=env)
    match = TIMING_RE.search(out.stderr)
    if match is None:
        raise RuntimeError(
            f"no '# timing' footer in {binary} stderr:\n{out.stderr}")
    return {
        "threads": int(match.group("threads")),
        "runs": int(match.group("runs")),
        "rounds": rounds,
        "wall_s": float(match.group("wall_s")),
    }


def run_fig10_cache_leg(build_dir, runs, rounds, cache):
    """Runs fig10_pressure once with the scenario cache on or off.

    Returns total wall clock (summed over the bench's per-sweep timing
    footers) and the scenario-construction seconds from the cumulative
    --profile stage report (the last report per stage is the process
    total; prepare_cache only exists on the cached path)."""
    binary = os.path.join(build_dir, "bench", "fig10_pressure")
    env = dict(os.environ, WSNQ_RUNS=str(runs), WSNQ_ROUNDS=str(rounds),
               WSNQ_SCENARIO_CACHE=cache)
    out = subprocess.run([binary, "--threads=1", "--profile"], check=True,
                         capture_output=True, text=True, env=env)
    footers = list(TIMING_RE.finditer(out.stderr))
    if not footers:
        raise RuntimeError(
            f"no '# timing' footer in {binary} stderr:\n{out.stderr}")
    stages = {}
    for match in PROFILE_RE.finditer(out.stderr):
        stages[match.group("stage")] = {
            "count": int(match.group("count")),
            "total_s": float(match.group("total_s")),
        }
    build_s = stages.get("experiment/build_scenario", {}).get("total_s", 0.0)
    build_s += stages.get("experiment/prepare_cache", {}).get("total_s", 0.0)
    return {
        "runs": runs,
        "rounds": rounds,
        "wall_s": round(sum(float(m.group("wall_s")) for m in footers), 3),
        "scenario_build_s": build_s,
        "stages": stages,
    }


def run_fig10_cache_compare(build_dir, runs, rounds):
    off = run_fig10_cache_leg(build_dir, runs, rounds, "0")
    on = run_fig10_cache_leg(build_dir, runs, rounds, "1")
    speedup = (off["scenario_build_s"] / on["scenario_build_s"]
               if on["scenario_build_s"] > 0 else None)
    return {"cache_off": off, "cache_on": on,
            "scenario_build_speedup": round(speedup, 2) if speedup else None}


def main():
    parser = argparse.ArgumentParser(
        description="Write a BENCH_<date>.json performance snapshot.")
    parser.add_argument("--build-dir", default="build",
                        help="CMake build tree holding bench/ binaries")
    parser.add_argument("--date",
                        help="snapshot date (default: today, UTC)")
    parser.add_argument("--runs", type=int, default=4,
                        help="WSNQ_RUNS for the fig6 sweep")
    parser.add_argument("--rounds", type=int, default=60,
                        help="WSNQ_ROUNDS for the fig6 sweep")
    parser.add_argument("--out", help="output path (default BENCH_<date>.json)")
    args = parser.parse_args()

    date = args.date or datetime.datetime.now(
        datetime.timezone.utc).strftime("%Y-%m-%d")
    out_path = args.out or f"BENCH_{date}.json"

    try:
        micro = run_micro(args.build_dir)
        fig6 = run_sweep(args.build_dir, "fig6_vary_n", args.runs,
                         args.rounds)
        loss = run_sweep(args.build_dir, "fig_loss_sweep", args.runs,
                         args.rounds)
        fig10 = run_fig10_cache_compare(args.build_dir, args.runs,
                                        args.rounds)
    except (OSError, subprocess.CalledProcessError, RuntimeError,
            json.JSONDecodeError, KeyError) as error:
        print(f"bench_snapshot: {error}", file=sys.stderr)
        return 1

    snapshot = {"date": date, "micro": micro, "fig6": fig6,
                "loss_sweep": loss, "fig10_scenario_cache": fig10}
    with open(out_path, "w", encoding="utf-8") as f:
        json.dump(snapshot, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote {out_path} (fig6 wall_s={fig6['wall_s']:.3f}, "
          f"loss_sweep wall_s={loss['wall_s']:.3f}, "
          f"fig10 scenario-build speedup="
          f"{fig10['scenario_build_speedup']}x, "
          f"{len(micro['benchmarks'])} micro benchmarks)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
