#!/usr/bin/env python3
"""Records a performance snapshot of the tree as BENCH_<date>.json (schema 2).

Five measurements, deliberately cheap enough to run on every perf-relevant
PR (a couple of minutes on one core):

  * the micro primitive benchmarks (build/bench/micro_primitives,
    Google Benchmark JSON) — per-op costs of the sketch/codec hot paths,
    including BM_RunProtocols/{256,1024,4096}, the per-round cost of the
    full protocol set over one convergecast tree (the simulator's
    dominant stage; bench_compare.py gates its medians with every other
    micro entry);
  * one end-to-end figure sweep (build/bench/fig6_vary_n) at reduced
    WSNQ_RUNS/WSNQ_ROUNDS — the wall clock of the whole simulator stack,
    measured over --reps repetitions (perf/bench_harness.h) so the
    snapshot records robust statistics (median, MAD, CV), not one sample;
  * one lossy sweep (build/bench/fig_loss_sweep) at the same reduced
    scale — the same stack with the fault subsystem hot (Gilbert/iid link
    chains, ARQ retransmission loops), so reliability-path regressions
    are visible separately from the lossless baseline;
  * the fig10 pressure sweep (build/bench/fig10_pressure) run twice, with
    WSNQ_SCENARIO_CACHE=0 and =1, parsing the --profile stage report —
    scenario-construction seconds (experiment/build_scenario plus, cached,
    experiment/prepare_cache) and total wall clock for both, with the
    cache-off/cache-on construction ratio recorded as the speedup the
    scenario cache (core/scenario_cache.h) is buying. Stage names follow
    core/experiment.cc: the per-run serial fold reports as
    "experiment/fold" and the cross-run parallel fold as
    "experiment/sweep_fold" (historical snapshots before the split merged
    both under "experiment/fold");
  * one serving-latency run (build/tools/wsnq_served + wsnq_loadgen over
    loopback at --serve-subs concurrent subscriptions, default 100k) —
    subscribe-ack and round-push p50/p99 plus push throughput for the
    continuous-serving path, recorded as a top-level "serve" section that
    bench_compare.py deliberately ignores (loopback latency is too
    machine-sensitive for the k·MAD gate; the numbers are for humans
    reading snapshot history). --serve-subs=0 skips the section.

Schema 2 additions over the historical v1 snapshots:

  * top-level "schema": 2 and a "metadata" block (host, CPU count,
    compiler, build type, flags, relevant WSNQ_* cache options, git rev) —
    so a diff between two snapshots can first answer "same machine, same
    build?" before anyone reads a number;
  * per-bench robust statistics from the "# bench" stderr line emitted by
    bench/bench_common.h: {reps, warmup, median_s, mad_s, min_s, max_s,
    mean_s, cv} next to the single-shot wall_s;
  * per-stage profile entries now carry min_s/max_s and, where the host
    grants perf_event_open, hardware-counter and allocation deltas
    (src/perf/stage_collector.h) — every "key=value" field of the
    "# profile" line is kept.

Snapshots are committed next to each other at the repo root. Compare two
with tools/bench_compare.py, which gates noise-aware (k·MAD) and exits
non-zero on a regression:

  python3 tools/bench_compare.py BENCH_old.json BENCH_new.json

Usage:
  tools/bench_snapshot.py [--build-dir=build] [--date=YYYY-MM-DD]
                          [--runs=4] [--rounds=60] [--reps=5] [--warmup=1]
                          [--out=PATH]

--date exists so a snapshot regenerated while reproducing an old result
can overwrite the original file instead of minting a new day.
"""

import argparse
import datetime
import json
import os
import platform
import re
import signal
import subprocess
import sys

SCHEMA_VERSION = 2

TIMING_RE = re.compile(
    r"# timing figure=(?P<figure>\S+) threads=(?P<threads>\d+) "
    r"runs=(?P<runs>\d+) wall_s=(?P<wall_s>[0-9.]+)")

# "# bench ..." and "# profile ..." lines are free-form key=value; parse
# them generically so new fields (counters, allocs) flow into the snapshot
# without a tool change.
_NUMBER_RE = re.compile(r"^-?\d+$")
_FLOAT_RE = re.compile(r"^-?\d+\.\d+(e-?\d+)?$")


def parse_kv_line(line):
    """Parses "# tag key=value key=value ..." into a dict (typed values)."""
    fields = {}
    for token in line.split()[2:]:
        if "=" not in token:
            continue
        key, value = token.split("=", 1)
        if _NUMBER_RE.match(value):
            fields[key] = int(value)
        elif _FLOAT_RE.match(value):
            fields[key] = float(value)
        else:
            fields[key] = value
    return fields


def parse_bench_lines(stderr):
    """Returns the parsed "# bench" repetition-statistics lines, in order."""
    return [parse_kv_line(line) for line in stderr.splitlines()
            if line.startswith("# bench ")]


def parse_profile_stages(stderr):
    """Returns {stage: fields} from the "# profile stage=..." lines.

    Later lines win: benches that run several sweeps report cumulative
    per-stage totals each time, so the last report per stage is the
    process total."""
    stages = {}
    for line in stderr.splitlines():
        if not line.startswith("# profile stage="):
            continue
        fields = parse_kv_line(line)
        stage = fields.pop("stage", None)
        if stage:
            stages[stage] = fields
    return stages


def parse_cmake_cache(path):
    """Returns {name: value} for the VAR:TYPE=value lines of CMakeCache.txt."""
    cache = {}
    try:
        with open(path, encoding="utf-8") as f:
            for line in f:
                line = line.strip()
                if not line or line.startswith(("#", "//")):
                    continue
                if "=" not in line or ":" not in line.split("=", 1)[0]:
                    continue
                name_type, value = line.split("=", 1)
                cache[name_type.split(":", 1)[0]] = value
    except OSError:
        pass
    return cache


def git_revision():
    try:
        out = subprocess.run(["git", "rev-parse", "--short", "HEAD"],
                             capture_output=True, text=True, check=True)
        return out.stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return ""


def collect_metadata(build_dir):
    """Machine/build/compiler identity: the "same machine, same build?"
    questions a snapshot diff must answer before its numbers mean
    anything."""
    cache = parse_cmake_cache(os.path.join(build_dir, "CMakeCache.txt"))
    uname = platform.uname()
    return {
        "hostname": uname.node,
        "os": f"{uname.system} {uname.release}",
        "arch": uname.machine,
        "cpus": os.cpu_count(),
        "compiler": cache.get("CMAKE_CXX_COMPILER", ""),
        "build_type": cache.get("CMAKE_BUILD_TYPE", ""),
        "cxx_flags": cache.get("CMAKE_CXX_FLAGS", ""),
        "options": {
            name: cache.get(name, "")
            for name in ("WSNQ_TRACING", "WSNQ_PERF_ALLOC", "WSNQ_SANITIZE",
                         "WSNQ_WERROR")
        },
        "git_rev": git_revision(),
    }


def run_micro(build_dir):
    """Returns the micro benchmark entries (name, real/cpu time, unit)."""
    binary = os.path.join(build_dir, "bench", "micro_primitives")
    out = subprocess.run([binary, "--benchmark_format=json"],
                         check=True, capture_output=True, text=True)
    report = json.loads(out.stdout)
    return {
        "num_cpus": report["context"]["num_cpus"],
        "mhz_per_cpu": report["context"]["mhz_per_cpu"],
        "benchmarks": [
            {
                "name": b["name"],
                "real_time": b["real_time"],
                "cpu_time": b["cpu_time"],
                "time_unit": b["time_unit"],
            }
            for b in report["benchmarks"]
        ],
    }


def run_sweep(build_dir, bench_name, runs, rounds, reps, warmup):
    """Runs one figure sweep binary under the repetition harness.

    Parses the "# timing" footer (single-shot wall clock, reproducible
    against v1 snapshots), the "# bench" robust statistics, and the
    "# profile" per-stage report (with counter/alloc deltas where the
    host provides them)."""
    binary = os.path.join(build_dir, "bench", bench_name)
    env = dict(os.environ, WSNQ_RUNS=str(runs), WSNQ_ROUNDS=str(rounds))
    out = subprocess.run(
        [binary, "--threads=1", "--profile", f"--reps={reps}",
         f"--warmup={warmup}"],
        check=True, capture_output=True, text=True, env=env)
    match = TIMING_RE.search(out.stderr)
    if match is None:
        raise RuntimeError(
            f"no '# timing' footer in {binary} stderr:\n{out.stderr}")
    bench_lines = parse_bench_lines(out.stderr)
    if not bench_lines:
        raise RuntimeError(
            f"no '# bench' statistics line in {binary} stderr:\n{out.stderr}")
    stats = bench_lines[0]
    return {
        "threads": int(match.group("threads")),
        "runs": int(match.group("runs")),
        "rounds": rounds,
        "wall_s": float(match.group("wall_s")),
        "reps": stats.get("reps", reps),
        "warmup": stats.get("warmup", warmup),
        "median_s": stats.get("median_s"),
        "mad_s": stats.get("mad_s"),
        "min_s": stats.get("min_s"),
        "max_s": stats.get("max_s"),
        "mean_s": stats.get("mean_s"),
        "cv": stats.get("cv"),
        "stages": parse_profile_stages(out.stderr),
    }


def run_fig10_cache_leg(build_dir, runs, rounds, cache):
    """Runs fig10_pressure once with the scenario cache on or off.

    Returns total wall clock (summed over the bench's per-sweep timing
    footers) and the scenario-construction seconds from the cumulative
    --profile stage report (the last report per stage is the process
    total; prepare_cache only exists on the cached path)."""
    binary = os.path.join(build_dir, "bench", "fig10_pressure")
    env = dict(os.environ, WSNQ_RUNS=str(runs), WSNQ_ROUNDS=str(rounds),
               WSNQ_SCENARIO_CACHE=cache)
    out = subprocess.run([binary, "--threads=1", "--profile"], check=True,
                         capture_output=True, text=True, env=env)
    footers = list(TIMING_RE.finditer(out.stderr))
    if not footers:
        raise RuntimeError(
            f"no '# timing' footer in {binary} stderr:\n{out.stderr}")
    stages = parse_profile_stages(out.stderr)
    build_s = stages.get("experiment/build_scenario", {}).get("total_s", 0.0)
    build_s += stages.get("experiment/prepare_cache", {}).get("total_s", 0.0)
    return {
        "runs": runs,
        "rounds": rounds,
        "wall_s": round(sum(float(m.group("wall_s")) for m in footers), 3),
        "scenario_build_s": build_s,
        "stages": stages,
    }


def run_fig10_cache_compare(build_dir, runs, rounds):
    off = run_fig10_cache_leg(build_dir, runs, rounds, "0")
    on = run_fig10_cache_leg(build_dir, runs, rounds, "1")
    speedup = (off["scenario_build_s"] / on["scenario_build_s"]
               if on["scenario_build_s"] > 0 else None)
    return {"cache_off": off, "cache_on": on,
            "scenario_build_speedup": round(speedup, 2) if speedup else None}


def parse_tagged_line(text, tag):
    """Returns the parsed fields of the last '# <tag> key=value ...' line."""
    fields = None
    for line in text.splitlines():
        if line.startswith(f"# {tag} "):
            fields = parse_kv_line(line)
    return fields


def run_serve(build_dir, subs, connections, fields, rounds, shards, threads):
    """Runs the serving daemon + load generator and records the push path.

    Starts wsnq_served on an ephemeral port, drives wsnq_loadgen at the
    requested subscriber count, and returns the loadgen latency report
    (subscribe-ack and round-push p50/p99, pushes/sec) together with the
    daemon's own "# served" shutdown stats (coalesced backend rounds,
    convergecasts, byte counters). The serving stack is wall-clock
    sensitive by design — these are latency figures, not medians over
    reps — so bench_compare.py deliberately ignores this section (it
    diffs only "benches")."""
    served_bin = os.path.join(build_dir, "tools", "wsnq_served")
    loadgen_bin = os.path.join(build_dir, "tools", "wsnq_loadgen")
    served = subprocess.Popen(
        [served_bin, "--port=0", f"--shards={shards}", f"--threads={threads}",
         "--nodes=64", "--rounds-per-sec=20"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
    try:
        banner = parse_kv_line(served.stdout.readline())
        if "port" not in banner:
            raise RuntimeError("wsnq_served printed no startup banner")
        loadgen = subprocess.run(
            [loadgen_bin, f"--port={banner['port']}", f"--subs={subs}",
             f"--connections={connections}", f"--fields={fields}",
             f"--rounds={rounds}", "--timeout-sec=300"],
            check=True, capture_output=True, text=True, timeout=360)
        report = parse_tagged_line(loadgen.stdout, "loadgen")
        if report is None:
            raise RuntimeError("wsnq_loadgen printed no '# loadgen' report")
        served.send_signal(signal.SIGTERM)
        out, _ = served.communicate(timeout=30)
        if served.returncode != 0:
            raise RuntimeError(f"wsnq_served exited {served.returncode}")
        stats = parse_tagged_line(out, "served")
        if stats is None:
            raise RuntimeError("wsnq_served printed no '# served' stats")
        if report.get("ok") != 1 or report.get("errors") != 0:
            raise RuntimeError(f"loadgen reported errors: {report}")
        return {"shards": shards, "threads": threads, "loadgen": report,
                "daemon": stats}
    finally:
        if served.poll() is None:
            served.kill()


def main():
    parser = argparse.ArgumentParser(
        description="Write a BENCH_<date>.json performance snapshot.")
    parser.add_argument("--build-dir", default="build",
                        help="CMake build tree holding bench/ binaries")
    parser.add_argument("--date",
                        help="snapshot date (default: today, UTC)")
    parser.add_argument("--runs", type=int, default=4,
                        help="WSNQ_RUNS for the figure sweeps")
    parser.add_argument("--rounds", type=int, default=60,
                        help="WSNQ_ROUNDS for the figure sweeps")
    parser.add_argument("--reps", type=int, default=5,
                        help="measured repetitions per sweep (>= 3 gives "
                             "bench_compare.py a usable MAD)")
    parser.add_argument("--warmup", type=int, default=1,
                        help="unmeasured warmup repetitions per sweep")
    parser.add_argument("--out", help="output path (default BENCH_<date>.json)")
    parser.add_argument("--serve-subs", type=int, default=100000,
                        help="concurrent subscriptions for the serving "
                             "latency section (0 skips it)")
    parser.add_argument("--serve-connections", type=int, default=64,
                        help="client connections the subscriptions are "
                             "multiplexed over")
    parser.add_argument("--serve-fields", type=int, default=16,
                        help="distinct quantile fields (backend streams)")
    parser.add_argument("--serve-rounds", type=int, default=5,
                        help="complete push rounds the load generator waits "
                             "for")
    parser.add_argument("--serve-shards", type=int, default=4,
                        help="daemon --shards for the serving section")
    parser.add_argument("--serve-threads", type=int, default=4,
                        help="daemon --threads for the serving section")
    args = parser.parse_args()

    date = args.date or datetime.datetime.now(
        datetime.timezone.utc).strftime("%Y-%m-%d")
    out_path = args.out or f"BENCH_{date}.json"

    try:
        metadata = collect_metadata(args.build_dir)
        micro = run_micro(args.build_dir)
        benches = {
            "fig6": run_sweep(args.build_dir, "fig6_vary_n", args.runs,
                              args.rounds, args.reps, args.warmup),
            "loss_sweep": run_sweep(args.build_dir, "fig_loss_sweep",
                                    args.runs, args.rounds, args.reps,
                                    args.warmup),
        }
        fig10 = run_fig10_cache_compare(args.build_dir, args.runs,
                                        args.rounds)
        serve = None
        if args.serve_subs > 0:
            serve = run_serve(args.build_dir, args.serve_subs,
                              args.serve_connections, args.serve_fields,
                              args.serve_rounds, args.serve_shards,
                              args.serve_threads)
    except (OSError, subprocess.CalledProcessError,
            subprocess.TimeoutExpired, RuntimeError, json.JSONDecodeError,
            KeyError, TypeError) as error:
        print(f"bench_snapshot: {error}", file=sys.stderr)
        return 1

    snapshot = {"schema": SCHEMA_VERSION, "date": date, "metadata": metadata,
                "micro": micro, "benches": benches,
                "fig10_scenario_cache": fig10}
    if serve is not None:
        snapshot["serve"] = serve
    with open(out_path, "w", encoding="utf-8") as f:
        json.dump(snapshot, f, indent=2, sort_keys=True)
        f.write("\n")
    serve_note = ""
    if serve is not None:
        serve_note = (f", serve {serve['loadgen']['subs']} subs "
                      f"push p50={serve['loadgen']['push_p50_ms']}ms "
                      f"p99={serve['loadgen']['push_p99_ms']}ms")
    print(f"wrote {out_path} (fig6 median_s={benches['fig6']['median_s']}, "
          f"loss_sweep median_s={benches['loss_sweep']['median_s']}, "
          f"fig10 scenario-build speedup="
          f"{fig10['scenario_build_speedup']}x, "
          f"{len(micro['benchmarks'])} micro benchmarks{serve_note})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
