#!/usr/bin/env sh
# Runs the full wsnq-analyzer gate the way CI's analyze job does:
#   1. ensure a compile_commands.json exists (configures the `analyze`
#      preset when clang++ is available, else any existing build dir);
#   2. tree-wide analyzer scan (auto engine: libclang when importable);
#   3. expected-diagnostic corpus selftest (fallback engine — the pinned
#      baseline every checkout can run).
# Exit status is nonzero when any step finds anything.
set -eu

root="$(cd "$(dirname "$0")/.." && pwd)"
compdb=""

for dir in "$root/build-analyze" "$root/build"; do
  if [ -f "$dir/compile_commands.json" ]; then
    compdb="$dir"
    break
  fi
done

if [ -z "$compdb" ]; then
  if command -v clang++ >/dev/null 2>&1 && command -v cmake >/dev/null 2>&1
  then
    echo "run_analyzer: configuring the analyze preset for a compdb" >&2
    cmake --preset analyze -S "$root" >/dev/null
    compdb="$root/build-analyze"
  else
    echo "run_analyzer: no compile_commands.json and no clang++;" \
         "running without a compdb (fallback engine)" >&2
    compdb="$root/build"  # nonexistent is fine: engines degrade gracefully
  fi
fi

status=0
python3 "$root/tools/wsnq_analyzer.py" --root "$root" --compdb "$compdb" \
  || status=1
python3 "$root/tools/wsnq_analyzer.py" --engine=fallback \
  --selftest "$root/tests/analyzer" || status=1
exit $status
