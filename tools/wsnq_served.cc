// wsnq_served: event-driven quantile-serving daemon.
//
// Serves continuous quantile subscriptions over loopback TCP: clients
// SUBSCRIBE to (field, rank) pairs with the length-prefixed binary
// protocol of docs/serving.md and receive one ANSWER push per backend
// round. The backend is the paper's simulator — every field name resolves
// to a synthetic sensor deployment (serve/field_catalog.h) and all
// subscriptions on a field coalesce into one MultiIQ convergecast per
// round (serve/broker.h).
//
// Examples:
//   wsnq_served --port=9190 --shards=4 --threads=4
//   wsnq_served --port=0 --max-rounds=50 --rounds-per-sec=100   # smoke
//
// Flags:
//   --port=P            loopback TCP port (0 = ephemeral; the bound port
//                       is printed on the startup line)
//   --shards=N          simulation shards fields are hashed over (>= 1)
//   --threads=N         worker threads for the shard fan-out (>= 1;
//                       answers are bit-identical for every value)
//   --subtree-parallel[=BOOL]
//                       split each stream's convergecast waves over
//                       subtree cuts (net/wave.h); answers stay
//                       bit-identical
//   --max-subs=N        subscription-table capacity
//   --rounds-per-sec=R  backend round pacing (> 0)
//   --max-rounds=N      exit cleanly after N rounds (0 = until SIGINT)
//   --nodes=N           sensors per field deployment
//   --seed=S            deployment seed (shared by every field)
//
// Startup prints "# wsnq_served listening port=... " on stdout; exit
// prints a "# served ..." stats line. Invalid flag combinations exit 2
// with a one-line reason (serve/serve_cli.h).

#include <atomic>
#include <csignal>
#include <cstdio>

#include "serve/serve_cli.h"
#include "serve/server.h"
#include "util/flags.h"

namespace {

using namespace wsnq;

std::atomic<bool> g_stop{false};

void HandleSignal(int) { g_stop.store(true, std::memory_order_relaxed); }

int Main(int argc, char** argv) {
  FlagParser flags(argc, argv);

  serve::ServedConfig cli;
  cli.port = static_cast<int>(flags.GetInt("port", 0));
  cli.shards = static_cast<int>(flags.GetInt("shards", 1));
  cli.threads = static_cast<int>(flags.GetInt("threads", 1));
  cli.max_subs = flags.GetInt("max-subs", 1 << 20);
  cli.rounds_per_sec = flags.GetDouble("rounds-per-sec", 20.0);
  cli.max_rounds = flags.GetInt("max-rounds", 0);

  serve::ServedFlagPresence present;
  present.port = flags.Has("port");
  present.shards = flags.Has("shards");
  present.threads = flags.Has("threads");
  present.max_subs = flags.Has("max-subs");
  present.rounds_per_sec = flags.Has("rounds-per-sec");
  present.max_rounds = flags.Has("max-rounds");

  serve::ServerOptions options;
  options.port = cli.port;
  options.rounds_per_sec = cli.rounds_per_sec;
  options.max_rounds = cli.max_rounds;
  options.broker.shards = cli.shards;
  options.broker.threads = cli.threads;
  options.broker.subtree_parallel = flags.GetBool("subtree-parallel", false);
  options.broker.max_subs = cli.max_subs;
  options.broker.base.num_sensors =
      static_cast<int>(flags.GetInt("nodes", 64));
  options.broker.base.seed =
      static_cast<uint64_t>(flags.GetInt("seed", 1));

  for (const std::string& err : flags.errors()) {
    std::fprintf(stderr, "%s\n", err.c_str());
    return 2;
  }
  for (const std::string& unused : flags.UnusedFlags()) {
    std::fprintf(stderr, "unknown flag --%s\n", unused.c_str());
    return 2;
  }
  const Status valid = serve::ValidateServedFlags(cli, present);
  if (!valid.ok()) {
    std::fprintf(stderr, "%s\n", valid.ToString().c_str());
    return 2;
  }
  if (options.broker.base.num_sensors < 2) {
    std::fprintf(stderr, "--nodes must be >= 2\n");
    return 2;
  }

  serve::Server server(options);
  Status status = server.Listen();
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("# wsnq_served listening port=%d shards=%d threads=%d "
              "rounds_per_sec=%g\n",
              server.port(), cli.shards, cli.threads, cli.rounds_per_sec);
  std::fflush(stdout);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  status = server.Run(&g_stop);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }

  const serve::BrokerStats broker = server.broker_stats();
  const serve::ServerStats& transport = server.stats();
  std::printf(
      "# served rounds=%lld subscribes=%lld unsubscribes=%lld pushes=%lld "
      "backend_rounds=%lld convergecasts=%lld rebuilds=%lld streams=%lld "
      "subs=%lld cache_hits=%lld cache_misses=%lld sessions_opened=%lld "
      "sessions_closed=%lld protocol_closes=%lld bytes_in=%lld "
      "bytes_out=%lld errors=0\n",
      static_cast<long long>(broker.rounds),
      static_cast<long long>(broker.subscribes),
      static_cast<long long>(broker.unsubscribes),
      static_cast<long long>(broker.pushes),
      static_cast<long long>(broker.backend_rounds),
      static_cast<long long>(broker.convergecasts),
      static_cast<long long>(broker.protocol_rebuilds),
      static_cast<long long>(broker.streams),
      static_cast<long long>(broker.subs),
      static_cast<long long>(broker.cache_hits),
      static_cast<long long>(broker.cache_misses),
      static_cast<long long>(transport.sessions_opened),
      static_cast<long long>(transport.sessions_closed),
      static_cast<long long>(transport.protocol_closes),
      static_cast<long long>(transport.bytes_in),
      static_cast<long long>(transport.bytes_out));
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Main(argc, argv); }
