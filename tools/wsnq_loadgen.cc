// wsnq_loadgen: deterministic open-loop load generator for wsnq_served.
//
// Opens --connections loopback connections, pipelines --subs SUBSCRIBE
// requests across them (field and rank chosen by a seed-keyed hash, so
// the same --seed reproduces the same subscription population), then
// observes --rounds complete answer rounds and reports:
//   * subscribe-ack latency p50/p99 (queue-to-ack, open loop), and
//   * round-push latency p50/p99 — each push measured against the first
//     push of its round, i.e. the fan-out skew across the population —
//   * sustained pushes/sec over the observation window.
//
// Output is one "# loadgen key=value ..." line (bench_snapshot.py parses
// it into the serve section of the benchmark snapshot). Exit 0 only if
// every subscription was acked and every observed round delivered every
// push with zero protocol errors.
//
// Example, against a daemon on port 9190:
//   wsnq_loadgen --port=9190 --subs=100000 --connections=16 --rounds=10

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "serve/client.h"
#include "serve/serve_cli.h"
#include "serve/wire.h"
#include "util/flags.h"
#include "util/trace.h"

namespace {

using namespace wsnq;

/// SplitMix64: the seed-keyed assignment of subs to fields/ranks.
uint64_t Mix(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

double Percentile(std::vector<double>* sorted_in_place, double p) {
  if (sorted_in_place->empty()) return 0.0;
  std::sort(sorted_in_place->begin(), sorted_in_place->end());
  const size_t index = static_cast<size_t>(
      p * static_cast<double>(sorted_in_place->size() - 1) + 0.5);
  return (*sorted_in_place)[std::min(index, sorted_in_place->size() - 1)];
}

int Main(int argc, char** argv) {
  FlagParser flags(argc, argv);

  serve::LoadgenConfig cli;
  cli.port = static_cast<int>(flags.GetInt("port", 0));
  cli.subs = flags.GetInt("subs", 1000);
  cli.connections = static_cast<int>(flags.GetInt("connections", 8));
  cli.fields = static_cast<int>(flags.GetInt("fields", 16));
  cli.rounds = flags.GetInt("rounds", 10);
  cli.seed = flags.GetInt("seed", 1);
  const double timeout_sec = flags.GetDouble("timeout-sec", 120.0);

  serve::LoadgenFlagPresence present;
  present.port = flags.Has("port");
  present.subs = flags.Has("subs");
  present.connections = flags.Has("connections");
  present.fields = flags.Has("fields");
  present.rounds = flags.Has("rounds");
  present.seed = flags.Has("seed");

  for (const std::string& err : flags.errors()) {
    std::fprintf(stderr, "%s\n", err.c_str());
    return 2;
  }
  for (const std::string& unused : flags.UnusedFlags()) {
    std::fprintf(stderr, "unknown flag --%s\n", unused.c_str());
    return 2;
  }
  const Status valid = serve::ValidateLoadgenFlags(cli, present);
  if (!valid.ok()) {
    std::fprintf(stderr, "%s\n", valid.ToString().c_str());
    return 2;
  }

  // Connect.
  std::vector<std::unique_ptr<serve::Client>> owned(
      static_cast<size_t>(cli.connections));
  std::vector<serve::Client*> clients;
  for (auto& client : owned) {
    client = std::make_unique<serve::Client>();
    const Status status = client->Connect(cli.port);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    clients.push_back(client.get());
  }

  // Queue the whole subscription population, pipelined and open-loop:
  // sub i rides connection i % connections with that connection's next
  // request id. send_time[conn][req_id-1] anchors the ack latency.
  std::vector<std::vector<double>> send_time(clients.size());
  std::vector<uint64_t> next_request_id(clients.size(), 1);
  const double t_start = prof::WallSeconds();
  for (int64_t i = 0; i < cli.subs; ++i) {
    const size_t conn = static_cast<size_t>(i) % clients.size();
    const uint64_t h = Mix(static_cast<uint64_t>(cli.seed) * 0x51ED2701ull +
                           static_cast<uint64_t>(i));
    serve::SubscribeRequest request;
    request.field =
        "field-" + std::to_string(h % static_cast<uint64_t>(cli.fields));
    request.rank_permille = static_cast<uint32_t>(1 + (h >> 32) % 1000);
    serve::Frame frame;
    frame.request_id = next_request_id[conn]++;
    frame.opcode = static_cast<uint8_t>(serve::Opcode::kSubscribe);
    frame.payload = serve::EncodeSubscribePayload(request);
    clients[conn]->QueueFrame(frame);
    send_time[conn].push_back(prof::WallSeconds());
  }

  // Pump until every ack arrived and `rounds` rounds delivered a push to
  // every subscription.
  std::vector<double> ack_latencies_ms;
  ack_latencies_ms.reserve(static_cast<size_t>(cli.subs));
  std::vector<double> push_latencies_ms;
  int64_t acks = 0;
  int64_t errors = 0;
  int64_t pushes = 0;
  double first_push_time = 0.0;
  double last_push_time = 0.0;
  /// round -> (count, time of the round's first observed push).
  std::map<int64_t, std::pair<int64_t, double>> round_state;
  std::vector<std::vector<double>> round_latencies;  // per observed round

  const double deadline = t_start + timeout_sec;
  int64_t complete_rounds = 0;
  while (prof::WallSeconds() < deadline) {
    const Status status = serve::PumpClients(clients, 50);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    const double now = prof::WallSeconds();
    for (size_t conn = 0; conn < clients.size(); ++conn) {
      for (const serve::Frame& frame : clients[conn]->TakeFrames()) {
        switch (static_cast<serve::Opcode>(frame.opcode)) {
          case serve::Opcode::kSubscribeAck: {
            ++acks;
            const size_t req = static_cast<size_t>(frame.request_id - 1);
            if (req < send_time[conn].size()) {
              ack_latencies_ms.push_back(
                  (now - send_time[conn][req]) * 1000.0);
            }
            break;
          }
          case serve::Opcode::kAnswer: {
            StatusOr<serve::AnswerPush> push =
                serve::DecodeAnswerPayload(frame.payload);
            if (!push.ok()) {
              ++errors;
              break;
            }
            ++pushes;
            if (first_push_time == 0.0) first_push_time = now;
            last_push_time = now;
            auto [it, fresh] = round_state.try_emplace(
                push.value().round, std::pair<int64_t, double>{0, now});
            ++it->second.first;
            const double skew_ms = (now - it->second.second) * 1000.0;
            if (fresh) round_latencies.emplace_back();
            // Rounds arrive in order per connection; map order is fine.
            round_latencies[static_cast<size_t>(
                                std::distance(round_state.begin(), it))]
                .push_back(skew_ms);
            if (it->second.first == cli.subs) ++complete_rounds;
            break;
          }
          case serve::Opcode::kError:
            ++errors;
            break;
          default:
            break;
        }
      }
      if (clients[conn]->closed()) ++errors;
    }
    if (errors > 0) break;
    if (acks == cli.subs && complete_rounds >= cli.rounds) break;
  }

  // Only complete rounds count toward the latency distribution: a round
  // cut off by shutdown would fake a thin tail.
  size_t round_index = 0;
  for (const auto& [round, state] : round_state) {
    if (state.first == cli.subs &&
        round_index < round_latencies.size()) {
      push_latencies_ms.insert(push_latencies_ms.end(),
                               round_latencies[round_index].begin(),
                               round_latencies[round_index].end());
    }
    ++round_index;
  }

  const double span = last_push_time - first_push_time;
  const double pushes_per_sec =
      span > 0.0 ? static_cast<double>(pushes) / span : 0.0;
  const double ack_p50 = Percentile(&ack_latencies_ms, 0.50);
  const double ack_p99 = Percentile(&ack_latencies_ms, 0.99);
  const double push_p50 = Percentile(&push_latencies_ms, 0.50);
  const double push_p99 = Percentile(&push_latencies_ms, 0.99);

  const bool ok = errors == 0 && acks == cli.subs &&
                  complete_rounds >= cli.rounds;
  std::printf(
      "# loadgen subs=%lld connections=%d fields=%d rounds_observed=%lld "
      "acks=%lld ack_p50_ms=%.3f ack_p99_ms=%.3f push_p50_ms=%.3f "
      "push_p99_ms=%.3f pushes_per_sec=%.1f pushes=%lld errors=%lld "
      "ok=%d\n",
      static_cast<long long>(cli.subs), cli.connections, cli.fields,
      static_cast<long long>(complete_rounds), static_cast<long long>(acks),
      ack_p50, ack_p99, push_p50, push_p99, pushes_per_sec,
      static_cast<long long>(pushes), static_cast<long long>(errors),
      ok ? 1 : 0);
  if (!ok) {
    std::fprintf(stderr,
                 "loadgen incomplete: acks=%lld/%lld rounds=%lld/%lld "
                 "errors=%lld\n",
                 static_cast<long long>(acks),
                 static_cast<long long>(cli.subs),
                 static_cast<long long>(complete_rounds),
                 static_cast<long long>(cli.rounds),
                 static_cast<long long>(errors));
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Main(argc, argv); }
