// wsnq_mc: bounded-exhaustive model checker of the fault schedule space
// (docs/robustness.md "Model checking").
//
// Examples:
//   wsnq_mc --nodes=8 --max-drops=2                      # CI smoke bounds
//   wsnq_mc --nodes=12 --max-drops=3 --max-crashes=1     # ROADMAP bounds
//   wsnq_mc --replay=tests/mc_regressions/arq_exactness_two_drops.json
//
// Flags:
//   --nodes=N         total vertices, sensors + root (default 8, bound 12)
//   --rounds=R        rounds per schedule incl. initialization (default 4)
//   --radio=M --seed=S --phi=F --period=P --noise=PSI    scenario knobs
//   --algo=NAME[,..]  protocols to check (default: the six exact ones)
//   --max-drops=D     drop budget of the crash-free subspace (default 2)
//   --max-crashes=C   0 or 1 crashed node (default 0)
//   --crash-max-drops=D'   drop budget inside crashed subspaces (default 1)
//   --crash-lens=L[,..]    crash window lengths (default 1,2)
//   --no-arq          check the unreliable transport (drops go unrepaired;
//                     only the structural invariants are asserted)
//   --max-retx=N      ARQ retransmission budget (default 16)
//   --threads=N       workers (0 = auto; counts bit-identical regardless)
//   --stats=PATH      write exploration statistics as JSON
//   --repro-dir=DIR   write each minimized counterexample as DIR/<name>.json
//   --replay=PATH     replay one archived repro instead of enumerating
//
// Exit status: 0 = explored clean (or replay clean), 1 = violations found
// (minimized; written to --repro-dir when given), 2 = bad flags.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "algo/registry.h"
#include "mc/model_check.h"
#include "mc/runner.h"
#include "mc/schedule.h"
#include "util/flags.h"

namespace {

using namespace wsnq;

std::vector<std::string> SplitCommas(const std::string& raw) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= raw.size()) {
    const size_t comma = raw.find(',', start);
    if (comma == std::string::npos) {
      out.push_back(raw.substr(start));
      break;
    }
    out.push_back(raw.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

int WriteFile(const std::string& path, const std::string& content) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return 1;
  }
  std::fwrite(content.data(), 1, content.size(), out);
  std::fclose(out);
  return 0;
}

int Replay(const std::string& path) {
  std::FILE* in = std::fopen(path.c_str(), "rb");
  if (in == nullptr) {
    std::fprintf(stderr, "cannot open --replay=%s\n", path.c_str());
    return 2;
  }
  std::string text;
  char buf[4096];
  size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof(buf), in)) > 0) {
    text.append(buf, got);
  }
  std::fclose(in);

  auto repro = ReproFromJson(text);
  if (!repro.ok()) {
    std::fprintf(stderr, "%s\n", repro.status().ToString().c_str());
    return 2;
  }
  auto result = ReplayRepro(repro.value());
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 2;
  }
  std::printf("replay %s: algo=%s %s frames=%lld applied_drops=%d\n",
              path.c_str(), AlgorithmName(repro.value().algo),
              ScheduleToString(repro.value().schedule).c_str(),
              static_cast<long long>(result.value().frames_sent),
              result.value().applied_drops);
  if (result.value().violated) {
    const McViolation& v = result.value().violation;
    std::printf("VIOLATION %s at round %lld: %s\n", v.invariant.c_str(),
                static_cast<long long>(v.round), v.detail.c_str());
    return 1;
  }
  std::printf("clean: every invariant held\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  if (flags.Has("help")) {
    std::printf("see the header comment of tools/wsnq_mc.cc\n");
    return 0;
  }

  McOptions options;
  options.nodes = static_cast<int>(flags.GetInt("nodes", 8));
  options.rounds = static_cast<int>(flags.GetInt("rounds", 4));
  options.radio_range = flags.GetDouble("radio", 80.0);
  options.seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  options.phi = flags.GetDouble("phi", 0.5);
  options.period_rounds = flags.GetDouble("period", 10.0);
  options.noise_percent = flags.GetDouble("noise", 15.0);
  options.max_drops = static_cast<int>(flags.GetInt("max-drops", 2));
  options.max_crashes = static_cast<int>(flags.GetInt("max-crashes", 0));
  options.crash_max_drops =
      static_cast<int>(flags.GetInt("crash-max-drops", 1));
  options.arq = !flags.GetBool("no-arq", false);
  options.max_retx = static_cast<int>(flags.GetInt("max-retx", 16));
  options.threads = static_cast<int>(flags.GetInt("threads", 0));
  const std::string algo_list = flags.GetString("algo", "");
  const std::string crash_lens = flags.GetString("crash-lens", "");
  const std::string stats_path = flags.GetString("stats", "");
  const std::string repro_dir = flags.GetString("repro-dir", "");
  const std::string replay_path = flags.GetString("replay", "");

  for (const std::string& err : flags.errors()) {
    std::fprintf(stderr, "%s\n", err.c_str());
    return 2;
  }
  for (const std::string& unused : flags.UnusedFlags()) {
    std::fprintf(stderr, "unknown flag --%s (try --help)\n", unused.c_str());
    return 2;
  }
  if (options.nodes < 2 || options.rounds < 1 || options.max_drops < 0 ||
      options.max_crashes < 0 || options.max_crashes > 1 ||
      options.crash_max_drops < 0) {
    std::fprintf(stderr,
                 "bounds out of range: need nodes >= 2, rounds >= 1, "
                 "max-drops >= 0, max-crashes in {0, 1}\n");
    return 2;
  }
  if (!algo_list.empty()) {
    for (const std::string& name : SplitCommas(algo_list)) {
      auto kind = ParseAlgorithmName(name.c_str());
      if (!kind.ok()) {
        std::fprintf(stderr, "%s\n", kind.status().ToString().c_str());
        return 2;
      }
      options.algorithms.push_back(kind.value());
    }
  }
  if (!crash_lens.empty()) {
    options.crash_lens.clear();
    for (const std::string& raw : SplitCommas(crash_lens)) {
      char* end = nullptr;
      const long long v = std::strtoll(raw.c_str(), &end, 10);
      if (end == raw.c_str() || *end != '\0' || v < 0) {
        std::fprintf(stderr, "bad --crash-lens entry '%s'\n", raw.c_str());
        return 2;
      }
      options.crash_lens.push_back(v);
    }
  }

  if (!replay_path.empty()) return Replay(replay_path);

  auto report = RunModelCheck(options);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 2;
  }
  const McStats& stats = report.value().stats;
  std::printf(
      "model check: nodes=%d rounds=%d D=%d C=%d D'=%d algos=%lld\n",
      options.nodes, options.rounds, options.max_drops, options.max_crashes,
      options.crash_max_drops,
      static_cast<long long>(
          options.algorithms.empty()
              ? static_cast<int64_t>(PaperAlgorithms().size())
              : static_cast<int64_t>(options.algorithms.size())));
  std::printf(
      "explored=%lld pruned=%lld naive_total=%lld (subspaces=%lld, "
      "crash_specs=%lld, max_frames=%lld)\n",
      static_cast<long long>(stats.explored),
      static_cast<long long>(stats.pruned),
      static_cast<long long>(stats.naive_total),
      static_cast<long long>(stats.subspaces),
      static_cast<long long>(stats.crash_specs),
      static_cast<long long>(stats.max_frames));
  std::printf("states: distinct=%lld duplicate=%lld\n",
              static_cast<long long>(stats.distinct_states),
              static_cast<long long>(stats.duplicate_states));
  if (!stats_path.empty()) {
    if (WriteFile(stats_path, StatsToJson(options, stats)) != 0) return 2;
  }

  if (report.value().repros.empty()) {
    std::printf("violations: 0 — every invariant held on every schedule\n");
    return 0;
  }
  std::printf("violations: %lld (%zu minimized)\n",
              static_cast<long long>(stats.violations),
              report.value().repros.size());
  int repro_index = 0;
  for (const McRepro& repro : report.value().repros) {
    std::printf("  [%d] %s algo=%s %s\n      %s\n", repro_index,
                repro.invariant.c_str(), AlgorithmName(repro.algo),
                ScheduleToString(repro.schedule).c_str(),
                repro.detail.c_str());
    if (!repro_dir.empty()) {
      const std::string path = repro_dir + "/" + repro.invariant + "_" +
                               std::to_string(repro_index) + ".json";
      if (WriteFile(path, ReproToJson(repro)) != 0) return 2;
      std::printf("      written to %s\n", path.c_str());
    }
    ++repro_index;
  }
  return 1;
}
