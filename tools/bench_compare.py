#!/usr/bin/env python3
"""Diffs two BENCH_<date>.json snapshots with noise-aware thresholds.

Usage:
  tools/bench_compare.py OLD.json NEW.json [--k=3.0] [--rel-floor=0.05]
                         [--micro-rel=0.25]

Gating rule (the tentpole of the bench pipeline): a harness bench (fig6,
loss_sweep, ...) counts as a REGRESSION only when ALL three hold:

  * noise gate:    new_median > old_median + k * max(old_mad, new_mad)
    — the delta exceeds k median-absolute-deviations of either run, so
    ordinary within-run jitter (which the MAD measures directly) cannot
    trip it. With --reps=1 the MAD is 0 and this gate degenerates to the
    relative floor alone; record snapshots with reps >= 3.
  * relative floor: new_median > old_median * (1 + rel_floor)
    — tiny-but-statistically-clean deltas (microseconds on a fast stage)
    are not worth a red build.
  * floor shift:   new_min > old_min * (1 + rel_floor)
    — the min across reps is the contention-free floor; a real slowdown
    raises it along with the median, while between-run machine drift
    (CPU frequency, cgroup share — larger than the within-run MAD on a
    busy 1-core box) inflates the median but leaves the best rep close
    to the old floor. Skipped when either snapshot lacks min_s.

All gates must trip; an improvement can never regress. Micro benchmarks
(Google Benchmark, single sample, no MAD) are compared with a generous
relative-only threshold (--micro-rel, default 25%); this is also what
gates the BM_RunProtocols/{n} per-round protocol medians that track the
run_protocols hot loop (bench/micro_primitives.cc).

Exit codes: 0 = no regression, 1 = regression(s) flagged, 2 = unusable
input (missing file, schema mismatch, malformed snapshot). The CI
bench-regression job runs this informationally at first (docs/
observability.md explains the promotion path to a hard gate).

Cross-machine diffs (different hostname/compiler/build type in the
metadata blocks) are reported with a warning — the numbers still print,
but a regression verdict between different machines is noise by
construction, so gating is skipped unless --force-cross-machine.
"""

import argparse
import json
import sys

SCHEMA_VERSION = 2


def load_snapshot(path):
    with open(path, encoding="utf-8") as f:
        snapshot = json.load(f)
    schema = snapshot.get("schema", 1)
    if schema != SCHEMA_VERSION:
        raise ValueError(
            f"{path}: schema {schema} != {SCHEMA_VERSION} (regenerate with "
            f"tools/bench_snapshot.py; v1 snapshots lack the MAD statistics "
            f"this tool gates on)")
    return snapshot


def metadata_mismatches(old, new):
    """Returns the metadata keys on which the two snapshots disagree."""
    keys = ("hostname", "arch", "compiler", "build_type", "cxx_flags")
    old_meta = old.get("metadata", {})
    new_meta = new.get("metadata", {})
    return [k for k in keys if old_meta.get(k) != new_meta.get(k)]


def compare_benches(old, new, k, rel_floor):
    """Yields (name, old_median, new_median, delta_pct, verdict) rows.

    verdict is "regression", "improved", or "ok"."""
    old_benches = old.get("benches", {})
    new_benches = new.get("benches", {})
    for name in sorted(set(old_benches) & set(new_benches)):
        o, n = old_benches[name], new_benches[name]
        old_median, new_median = o.get("median_s"), n.get("median_s")
        if old_median is None or new_median is None:
            continue
        delta_pct = ((new_median - old_median) / old_median * 100.0
                     if old_median > 0 else 0.0)
        noise_band = k * max(o.get("mad_s") or 0.0, n.get("mad_s") or 0.0)
        old_min, new_min = o.get("min_s"), n.get("min_s")
        floor_up = (old_min is None or new_min is None
                    or new_min > old_min * (1.0 + rel_floor))
        floor_down = (old_min is None or new_min is None
                      or old_min > new_min * (1.0 + rel_floor))
        regressed = (new_median > old_median + noise_band
                     and new_median > old_median * (1.0 + rel_floor)
                     and floor_up)
        improved = (old_median > new_median + noise_band
                    and old_median > new_median * (1.0 + rel_floor)
                    and floor_down)
        verdict = ("regression" if regressed
                   else "improved" if improved else "ok")
        yield name, old_median, new_median, delta_pct, verdict


def compare_micro(old, new, micro_rel):
    """Yields (name, old_real, new_real, delta_pct, verdict) rows."""
    def by_name(snapshot):
        return {b["name"]: b
                for b in snapshot.get("micro", {}).get("benchmarks", [])}
    old_micro, new_micro = by_name(old), by_name(new)
    for name in sorted(set(old_micro) & set(new_micro)):
        old_real = old_micro[name]["real_time"]
        new_real = new_micro[name]["real_time"]
        delta_pct = ((new_real - old_real) / old_real * 100.0
                     if old_real > 0 else 0.0)
        regressed = new_real > old_real * (1.0 + micro_rel)
        improved = old_real > new_real * (1.0 + micro_rel)
        verdict = ("regression" if regressed
                   else "improved" if improved else "ok")
        yield name, old_real, new_real, delta_pct, verdict


def main():
    parser = argparse.ArgumentParser(
        description="Compare two BENCH_<date>.json snapshots; exit 1 on "
                    "regression.")
    parser.add_argument("old", help="baseline snapshot (committed)")
    parser.add_argument("new", help="candidate snapshot (fresh)")
    parser.add_argument("--k", type=float, default=3.0,
                        help="noise gate width in MADs (default 3)")
    parser.add_argument("--rel-floor", type=float, default=0.05,
                        help="minimum relative slowdown to flag (default 5%%)")
    parser.add_argument("--micro-rel", type=float, default=0.25,
                        help="relative threshold for single-sample micro "
                             "benchmarks (default 25%%)")
    parser.add_argument("--force-cross-machine", action="store_true",
                        help="gate even when the metadata blocks disagree")
    args = parser.parse_args()

    try:
        old = load_snapshot(args.old)
        new = load_snapshot(args.new)
    except (OSError, json.JSONDecodeError, ValueError) as error:
        print(f"bench_compare: {error}", file=sys.stderr)
        return 2

    mismatched = metadata_mismatches(old, new)
    gate = not mismatched or args.force_cross_machine
    if mismatched:
        print(f"warning: snapshots differ on {', '.join(mismatched)}; "
              f"{'gating anyway (--force-cross-machine)' if gate else 'cross-machine deltas are informational only'}",
              file=sys.stderr)

    regressions = []
    print(f"{'bench':<24} {'old_median_s':>12} {'new_median_s':>12} "
          f"{'delta':>8}  verdict")
    for name, old_v, new_v, delta, verdict in compare_benches(
            old, new, args.k, args.rel_floor):
        print(f"{name:<24} {old_v:>12.6f} {new_v:>12.6f} "
              f"{delta:>+7.1f}%  {verdict}")
        if verdict == "regression":
            regressions.append(f"bench {name}: {delta:+.1f}%")

    print(f"\n{'micro':<44} {'old_ns':>10} {'new_ns':>10} "
          f"{'delta':>8}  verdict")
    for name, old_v, new_v, delta, verdict in compare_micro(
            old, new, args.micro_rel):
        print(f"{name:<44} {old_v:>10.1f} {new_v:>10.1f} "
              f"{delta:>+7.1f}%  {verdict}")
        if verdict == "regression":
            regressions.append(f"micro {name}: {delta:+.1f}%")

    old_speedup = old.get("fig10_scenario_cache", {}).get(
        "scenario_build_speedup")
    new_speedup = new.get("fig10_scenario_cache", {}).get(
        "scenario_build_speedup")
    if old_speedup is not None and new_speedup is not None:
        print(f"\nfig10 scenario-build speedup: {old_speedup}x -> "
              f"{new_speedup}x (informational)")

    if not gate:
        print("\ncross-machine compare: regressions not gated")
        return 0
    if regressions:
        print(f"\nREGRESSION: {len(regressions)} flagged "
              f"(k={args.k} MADs, rel-floor={args.rel_floor:.0%})")
        for line in regressions:
            print(f"  {line}")
        return 1
    print("\nno regressions flagged")
    return 0


if __name__ == "__main__":
    sys.exit(main())
