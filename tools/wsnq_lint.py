#!/usr/bin/env python3
"""wsnq-lint: repo-specific correctness rules generic tools can't express.

Rules
  raw-assert        No raw assert()/abort() outside src/util/check.h; all
                    invariant checking goes through WSNQ_CHECK/WSNQ_DCHECK so
                    failures are uniform, grep-able, and NDEBUG-aware.
                    (static_assert and gtest's ASSERT_* are fine.)
  raw-random        No rand()/srand()/std::random_device/std::mt19937 outside
                    src/util/rng.*; every simulation must be bit-reproducible
                    from a seed (see util/rng.h).
  raw-thread        No std::thread/std::jthread/std::async outside
                    src/util/thread_pool.*; ad-hoc threads bypass the
                    deterministic fan-out/ordered-fold discipline that keeps
                    parallel results bit-identical to serial ones.
                    (std::thread::id and std::this_thread are fine — they
                    observe threads, they don't spawn them.)
  raw-clock         No std::chrono *_clock::now() outside src/util/trace.cc
                    (prof::WallSeconds), src/util/thread_pool.cc (per-worker
                    spans), src/perf/ (the measurement layer itself), and
                    bench/ (wall-clock sweep footers). Wall clock
                    in simulation or protocol code would leak
                    non-determinism into results and traces; time through
                    prof::WallSeconds (util/trace.h) so profiling stays
                    gated and auditable.
  perf-syscall      No perf_event_open / perf_event_attr / PERF_EVENT_IOC /
                    <linux/perf_event.h> outside src/perf/ — the sole
                    sanctioned home of hardware-counter plumbing
                    (perf/counters.h). Scattered counter syscalls would
                    bypass the graceful EPERM fallback and the per-stage
                    attribution the perf observatory guarantees.
  const-cast        No const_cast or std::const_pointer_cast anywhere.
                    Scenario artifacts (radio graphs, traces, value sources)
                    are shared const across runs and sweep points by
                    core/scenario_cache.h; casting constness away is exactly
                    the mutation-of-shared-state bug the cache's determinism
                    contract forbids, so the escape hatch is banned tree-wide.
  fault-rng         No wsnq::Rng (or util/rng.h include) inside src/fault/;
                    fault decisions must be pure counter-based hashes of
                    (seed, run, round/tick, src, dst) through the FaultKey
                    helpers (src/fault/fault_key.h), never draws from a
                    sequential stream — a stream's draw order would differ
                    across thread schedules and break the bit-identical
                    fault-injection contract.
  test-coverage     Every .cc under src/ is referenced (via its header path,
                    e.g. "algo/hbc.h") by at least one test that is registered
                    with wsnq_test() in tests/CMakeLists.txt.
  include-guard     Every header uses the canonical guard derived from its
                    repo-relative path: WSNQ_<DIR>_<FILE>_H_.
  tracked-build     No generated build artifacts (build*/ trees, CMakeCache,
                    object files ...) are tracked by git.

Usage: wsnq_lint.py [--root REPO_ROOT] [--list-rules]
Exit status: 0 when clean, 1 when any rule fires, 2 on usage error.

Adding a rule: write a `check_<name>(root) -> list[Finding]` function and
append it to CHECKS; docs/hardening.md describes the conventions.
"""

import argparse
import os
import re
import subprocess
import sys
from typing import List, NamedTuple

# Directories scanned for C++ sources (relative to the repo root).
CXX_ROOTS = ("src", "tests", "tools", "bench", "examples")
CXX_EXTENSIONS = (".cc", ".h", ".cpp", ".hpp")

# Expected-diagnostic corpora: these trees deliberately violate the rules
# (they pin wsnq-lint and wsnq-analyzer behavior via ctest) and are only
# ever scanned by their own selftest drivers, never as production code.
CORPUS_DIRS = (os.path.join("tests", "analyzer"), os.path.join("tests", "lint"))


class Finding(NamedTuple):
    path: str  # repo-relative
    line: int  # 1-based; 0 when the finding is file-level
    rule: str
    message: str


def cxx_files(root: str):
    for top in CXX_ROOTS:
        top_abs = os.path.join(root, top)
        if not os.path.isdir(top_abs):
            continue
        for dirpath, dirnames, filenames in os.walk(top_abs):
            dirnames[:] = [d for d in dirnames if not d.startswith(".")]
            rel_dir = os.path.relpath(dirpath, root)
            if any(rel_dir == c or rel_dir.startswith(c + os.sep)
                   for c in CORPUS_DIRS):
                continue
            for name in sorted(filenames):
                if name.endswith(CXX_EXTENSIONS):
                    yield os.path.relpath(os.path.join(dirpath, name), root)


def read_lines(root: str, rel: str) -> List[str]:
    with open(os.path.join(root, rel), encoding="utf-8") as f:
        return f.readlines()


def strip_comments_and_strings(line: str) -> str:
    """Best-effort removal of // comments and string/char literals so the
    pattern rules don't fire on prose or log text. Block comments spanning
    lines are not handled; the codebase doesn't use them mid-code."""
    line = re.sub(r'"(\\.|[^"\\])*"', '""', line)
    line = re.sub(r"'(\\.|[^'\\])*'", "''", line)
    return line.split("//", 1)[0]


RAW_ASSERT_RE = re.compile(r"(?<![A-Za-z0-9_])(assert|abort)\s*\(")
RAW_RANDOM_RE = re.compile(
    r"(?<![A-Za-z0-9_])(rand|srand)\s*\(|random_device|mt19937")


def check_raw_assert(root: str) -> List[Finding]:
    findings = []
    for rel in cxx_files(root):
        if rel == os.path.join("src", "util", "check.h"):
            continue  # the one sanctioned abort() site
        for i, raw in enumerate(read_lines(root, rel), start=1):
            if RAW_ASSERT_RE.search(strip_comments_and_strings(raw)):
                findings.append(Finding(
                    rel, i, "raw-assert",
                    "use WSNQ_CHECK/WSNQ_DCHECK (util/check.h) instead of "
                    "raw assert()/abort()"))
    return findings


def check_raw_random(root: str) -> List[Finding]:
    findings = []
    allowed = {os.path.join("src", "util", "rng.h"),
               os.path.join("src", "util", "rng.cc")}
    for rel in cxx_files(root):
        if rel in allowed:
            continue
        for i, raw in enumerate(read_lines(root, rel), start=1):
            if RAW_RANDOM_RE.search(strip_comments_and_strings(raw)):
                findings.append(Finding(
                    rel, i, "raw-random",
                    "use the deterministic wsnq::Rng (util/rng.h); "
                    "rand()/std::random_device break reproducibility"))
    return findings


# std::thread/std::jthread construction and std::async, but neither
# std::thread::id (the `(?!\s*::)` guard) nor std::this_thread (the text
# after `std::` is "this_thread", which `thread\b` can't match).
RAW_THREAD_RE = re.compile(
    r"std\s*::\s*(jthread\b|async\b|thread\b(?!\s*::))")


def check_raw_thread(root: str) -> List[Finding]:
    findings = []
    allowed = {os.path.join("src", "util", "thread_pool.h"),
               os.path.join("src", "util", "thread_pool.cc")}
    for rel in cxx_files(root):
        if rel in allowed:
            continue
        for i, raw in enumerate(read_lines(root, rel), start=1):
            if RAW_THREAD_RE.search(strip_comments_and_strings(raw)):
                findings.append(Finding(
                    rel, i, "raw-thread",
                    "use wsnq::ThreadPool (util/thread_pool.h); raw "
                    "std::thread/std::async bypass the deterministic "
                    "fan-out/ordered-fold discipline"))
    return findings


# steady_clock::now(), system_clock::now(), high_resolution_clock::now() —
# with or without the std::chrono:: qualification.
RAW_CLOCK_RE = re.compile(
    r"(steady_clock|system_clock|high_resolution_clock)\s*::\s*now\s*\(")


def check_raw_clock(root: str) -> List[Finding]:
    findings = []
    allowed = {os.path.join("src", "util", "trace.cc"),
               os.path.join("src", "util", "thread_pool.cc")}
    allowed_prefixes = ("bench" + os.sep,
                        os.path.join("src", "perf") + os.sep)
    for rel in cxx_files(root):
        if rel in allowed or rel.startswith(allowed_prefixes):
            continue
        for i, raw in enumerate(read_lines(root, rel), start=1):
            if RAW_CLOCK_RE.search(strip_comments_and_strings(raw)):
                findings.append(Finding(
                    rel, i, "raw-clock",
                    "time through prof::WallSeconds / prof::ScopedTimer "
                    "(util/trace.h); raw clock reads leak wall-clock "
                    "non-determinism into simulation code"))
    return findings


# const_cast<...> and std::const_pointer_cast<...>. Whole-token match so
# identifiers merely containing the words can't fire it.
CONST_CAST_RE = re.compile(
    r"(?<![A-Za-z0-9_])(const_cast|const_pointer_cast)\s*<")


def check_const_cast(root: str) -> List[Finding]:
    findings = []
    for rel in cxx_files(root):
        for i, raw in enumerate(read_lines(root, rel), start=1):
            if CONST_CAST_RE.search(strip_comments_and_strings(raw)):
                findings.append(Finding(
                    rel, i, "const-cast",
                    "const_cast/const_pointer_cast would let code mutate "
                    "scenario artifacts shared const across runs "
                    "(core/scenario_cache.h); restructure so mutable state "
                    "is per-run instead"))
    return findings


# wsnq::Rng construction/use or an include of util/rng.h. The `Rng` token
# is matched as a whole word so FaultRng-style names can't slip through on
# a substring technicality. The include form is matched against the raw
# line (minus trailing // comment): quoted include paths are string
# literals, so the stripped text would never contain them.
FAULT_RNG_RE = re.compile(r"(?<![A-Za-z0-9_])Rng(?![A-Za-z0-9_])")
FAULT_RNG_INCLUDE_RE = re.compile(r'#\s*include\s*[<"]util/rng\.h[>"]')


def check_fault_rng(root: str) -> List[Finding]:
    findings = []
    fault_dir = os.path.join("src", "fault") + os.sep
    keying_helper = os.path.join("src", "fault", "fault_key.h")
    for rel in cxx_files(root):
        if not rel.startswith(fault_dir) or rel == keying_helper:
            continue
        for i, raw in enumerate(read_lines(root, rel), start=1):
            if (FAULT_RNG_RE.search(strip_comments_and_strings(raw))
                    or FAULT_RNG_INCLUDE_RE.search(raw.split("//", 1)[0])):
                findings.append(Finding(
                    rel, i, "fault-rng",
                    "fault decisions must go through the counter-based "
                    "FaultBits/FaultUniform/FaultBernoulli helpers "
                    "(fault/fault_key.h), not a sequential wsnq::Rng "
                    "stream — draw order would break bit-identical "
                    "parallel fault injection"))
    return findings


# perf_event_open (direct or via syscall(__NR_/SYS_perf_event_open)),
# the attr struct, the ioctl constants, and the kernel header itself. The
# include form is matched against the raw line: <...> includes survive
# literal-stripping, but keep the raw text so a "path" include can't hide.
PERF_SYSCALL_RE = re.compile(
    r"perf_event_open|perf_event_attr|PERF_EVENT_IOC|PERF_COUNT_")
PERF_INCLUDE_RE = re.compile(r'#\s*include\s*[<"]linux/perf_event\.h[>"]')


def check_perf_syscall(root: str) -> List[Finding]:
    findings = []
    perf_dir = os.path.join("src", "perf") + os.sep
    for rel in cxx_files(root):
        if rel.startswith(perf_dir):
            continue  # the sanctioned measurement layer (perf/counters.h)
        for i, raw in enumerate(read_lines(root, rel), start=1):
            if (PERF_SYSCALL_RE.search(strip_comments_and_strings(raw))
                    or PERF_INCLUDE_RE.search(raw.split("//", 1)[0])):
                findings.append(Finding(
                    rel, i, "perf-syscall",
                    "hardware counters go through perf::CounterSet "
                    "(perf/counters.h) — src/perf/ is the sole sanctioned "
                    "home of perf_event_open, so EPERM fallback and "
                    "per-stage attribution stay uniform"))
    return findings


SERVE_SYSCALL_RE = re.compile(
    r"\b(socket|bind|listen|accept4?|connect|poll|ppoll|select|"
    r"epoll_create1?|epoll_ctl|epoll_wait|recv|recvmsg|recvfrom|send|"
    r"sendmsg|sendto|setsockopt|getsockopt|getsockname|shutdown)\s*\(")
SERVE_INCLUDE_RE = re.compile(
    r'#\s*include\s*[<"](sys/socket\.h|sys/epoll\.h|sys/select\.h|'
    r'poll\.h|netinet/[a-z_]+\.h|arpa/inet\.h)[>"]')


def check_serve_syscall(root: str) -> List[Finding]:
    findings = []
    serve_dir = os.path.join("src", "serve") + os.sep
    for rel in cxx_files(root):
        if rel.startswith(serve_dir):
            continue  # the sanctioned transport layer (serve/sockets.h)
        for i, raw in enumerate(read_lines(root, rel), start=1):
            if (SERVE_SYSCALL_RE.search(strip_comments_and_strings(raw))
                    or SERVE_INCLUDE_RE.search(raw.split("//", 1)[0])):
                findings.append(Finding(
                    rel, i, "serve-syscall",
                    "socket/poll syscalls are confined to src/serve/ "
                    "(serve/sockets.h, serve/server.h, serve/client.h) — "
                    "the simulation core, tools, and tests stay "
                    "transport-free so the backend is testable without a "
                    "network"))
    return findings


def check_test_coverage(root: str) -> List[Finding]:
    findings = []
    cmake_path = os.path.join(root, "tests", "CMakeLists.txt")
    if not os.path.isfile(cmake_path):
        return [Finding("tests/CMakeLists.txt", 0, "test-coverage",
                        "missing tests/CMakeLists.txt")]
    with open(cmake_path, encoding="utf-8") as f:
        cmake = f.read()
    registered = re.findall(r"wsnq_test\(\s*([A-Za-z0-9_]+)\s*\)", cmake)
    corpus = ""
    for name in registered:
        test_rel = os.path.join("tests", name + ".cc")
        if not os.path.isfile(os.path.join(root, test_rel)):
            findings.append(Finding(
                "tests/CMakeLists.txt", 0, "test-coverage",
                f"registered test '{name}' has no tests/{name}.cc"))
            continue
        corpus += "".join(read_lines(root, test_rel))
    for rel in cxx_files(root):
        if not (rel.startswith("src" + os.sep) and rel.endswith(".cc")):
            continue
        header_ref = os.path.splitext(os.path.relpath(rel, "src"))[0] + ".h"
        header_ref = header_ref.replace(os.sep, "/")
        if header_ref not in corpus:
            findings.append(Finding(
                rel, 0, "test-coverage",
                f"no registered test references '{header_ref}'; add or "
                "extend a test in tests/ and register it with wsnq_test()"))
    return findings


GUARD_USE_RE = re.compile(r"^#ifndef\s+([A-Za-z0-9_]+)\s*$", re.MULTILINE)


def expected_guard(rel: str) -> str:
    stem = os.path.splitext(rel)[0]
    parts = stem.split(os.sep)
    if parts[0] == "src":
        parts = parts[1:]  # src/ is the include root: src/algo/hbc.h -> ALGO_HBC
    return "WSNQ_" + "_".join(p.upper() for p in parts) + "_H_"


def check_include_guard(root: str) -> List[Finding]:
    findings = []
    for rel in cxx_files(root):
        if not rel.endswith((".h", ".hpp")):
            continue
        text = "".join(read_lines(root, rel))
        want = expected_guard(rel)
        match = GUARD_USE_RE.search(text)
        got = match.group(1) if match else None
        if got != want or f"#define {want}" not in text:
            findings.append(Finding(
                rel, 0, "include-guard",
                f"include guard must be {want} (found "
                f"{got or 'no #ifndef guard'})"))
    return findings


TRACKED_BUILD_RE = re.compile(
    r"^(build[^/]*|cmake-build-[^/]*|out)/"
    r"|(^|/)(CMakeCache\.txt|CTestTestfile\.cmake|cmake_install\.cmake)$"
    r"|(^|/)CMakeFiles/"
    r"|\.(o|obj|a|so|dylib)$")


def check_tracked_build(root: str) -> List[Finding]:
    try:
        out = subprocess.run(
            ["git", "-C", root, "ls-files"],
            capture_output=True, text=True, timeout=30, check=True).stdout
    except (OSError, subprocess.SubprocessError):
        return []  # not a git checkout (e.g. a tarball): nothing to enforce
    findings = []
    for tracked in out.splitlines():
        if TRACKED_BUILD_RE.search(tracked):
            findings.append(Finding(
                tracked, 0, "tracked-build",
                "generated build artifact is tracked by git; "
                "`git rm --cached` it (see .gitignore)"))
    return findings


CHECKS = [
    check_raw_assert,
    check_raw_random,
    check_raw_thread,
    check_raw_clock,
    check_const_cast,
    check_fault_rng,
    check_perf_syscall,
    check_serve_syscall,
    check_test_coverage,
    check_include_guard,
    check_tracked_build,
]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root", default=os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))),
        help="repository root (default: parent of this script)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print rule names and exit")
    args = parser.parse_args()

    if args.list_rules:
        for check in CHECKS:
            print(check.__name__.replace("check_", "", 1).replace("_", "-"))
        return 0

    if not os.path.isdir(os.path.join(args.root, "src")):
        print(f"wsnq-lint: {args.root} does not look like the repo root",
              file=sys.stderr)
        return 2

    findings = []
    for check in CHECKS:
        findings.extend(check(args.root))
    for f in sorted(findings):
        location = f"{f.path}:{f.line}" if f.line else f.path
        print(f"{location}: [{f.rule}] {f.message}")
    if findings:
        print(f"wsnq-lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print(f"wsnq-lint: clean ({len(CHECKS)} rules)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
