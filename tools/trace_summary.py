#!/usr/bin/env python3
"""Rolls a wsnq trace into per-phase/per-event tables.

Reads either trace format written by --trace=PATH (JSONL when the path ends
in .jsonl, Chrome/Perfetto trace_event JSON otherwise) and prints:

  * one row per (phase, name): event count, distinct emitting nodes, and the
    sum of each integer arg ("bits", "packets", ...) carried by the events;
  * a per-protocol round span, so a multi-algorithm trace shows how many
    rounds each protocol contributed;
  * the counter totals (WSNQ_TRACE_COUNTER streams).

Usage:
  tools/trace_summary.py out.json [--phase=net] [--proto=IQ]

The summary is purely logical (event counts and logical-tick ranges); wall
clock never enters a trace file (docs/observability.md).
"""

import argparse
import collections
import json
import sys


def load_events(path):
    """Returns the trace as a list of JSONL-shaped event dicts."""
    with open(path, "r", encoding="utf-8") as f:
        body = f.read()
    if not body.strip():
        return []
    if body.lstrip().startswith("{") and '"traceEvents"' in body[:256]:
        return [chrome_to_jsonl(e) for e in json.loads(body)["traceEvents"]]
    return [json.loads(line) for line in body.splitlines() if line.strip()]


def chrome_to_jsonl(event):
    """Maps one Chrome trace_event back onto the JSONL field names."""
    kinds = {"B": "begin", "E": "end", "i": "instant", "C": "counter"}
    args = dict(event.get("args", {}))
    out = {
        "run": event.get("pid", 0),
        "tick": event.get("ts", 0),
        "round": args.pop("round", 0),
        "proto": args.pop("proto", ""),
        "phase": event.get("cat", ""),
        "name": event.get("name", ""),
        "node": event.get("tid", 0) - 1,
        "kind": kinds.get(event.get("ph"), "instant"),
    }
    if args:
        out["args"] = args
    return out


def summarize(events, phase_filter=None, proto_filter=None):
    per_event = collections.OrderedDict()
    per_proto = {}
    counters = collections.Counter()
    for e in events:
        if phase_filter and e.get("phase") != phase_filter:
            continue
        if proto_filter and e.get("proto") != proto_filter:
            continue
        if e.get("kind") == "counter":
            for key, value in e.get("args", {}).items():
                counters[key] += value
            continue
        key = (e.get("phase", ""), e.get("name", ""))
        stat = per_event.setdefault(
            key, {"count": 0, "nodes": set(), "args": collections.Counter()})
        stat["count"] += 1
        stat["nodes"].add(e.get("node", -1))
        for arg_key, value in e.get("args", {}).items():
            stat["args"][arg_key] += value
        proto = e.get("proto", "")
        if proto:
            rounds = per_proto.setdefault(proto, [None, None])
            r = e.get("round", 0)
            rounds[0] = r if rounds[0] is None else min(rounds[0], r)
            rounds[1] = r if rounds[1] is None else max(rounds[1], r)
    return per_event, per_proto, counters


def main():
    parser = argparse.ArgumentParser(
        description="Summarize a wsnq --trace file.")
    parser.add_argument("trace", help="trace file (.jsonl or Chrome JSON)")
    parser.add_argument("--phase", help="only this phase (e.g. net)")
    parser.add_argument("--proto", help="only this protocol (e.g. IQ)")
    args = parser.parse_args()

    try:
        events = load_events(args.trace)
    except (OSError, json.JSONDecodeError, KeyError) as error:
        print(f"trace_summary: cannot read {args.trace}: {error}",
              file=sys.stderr)
        return 2
    if not events:
        print(f"trace_summary: {args.trace} holds no events "
              "(built without -DWSNQ_TRACING=ON?)")
        return 0

    per_event, per_proto, counters = summarize(events, args.phase, args.proto)

    print(f"{len(events)} events, "
          f"{len({e.get('run', 0) for e in events})} run(s)\n")
    print(f"{'phase':<12} {'name':<22} {'count':>8} {'nodes':>6}  arg sums")
    for (phase, name), stat in sorted(per_event.items()):
        sums = " ".join(f"{k}={v}" for k, v in sorted(stat["args"].items()))
        print(f"{phase:<12} {name:<22} {stat['count']:>8} "
              f"{len(stat['nodes']):>6}  {sums}")
    if per_proto:
        print(f"\n{'proto':<10} rounds")
        for proto, (lo, hi) in sorted(per_proto.items()):
            print(f"{proto:<10} {lo}..{hi}")
    if counters:
        print(f"\n{'counter':<22} total")
        for key, total in sorted(counters.items()):
            print(f"{key:<22} {total}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
