#!/usr/bin/env bash
# Runs clang-tidy (config: .clang-tidy) over the first-party C++ tree.
#
# Usage:
#   tools/run_clang_tidy.sh [path ...]      # default: src tests tools bench examples
#
# Environment:
#   CLANG_TIDY            clang-tidy binary (default: clang-tidy)
#   WSNQ_TIDY_BUILD_DIR   build tree with compile_commands.json
#                         (default: <repo>/build; configured on demand)
#
# Exit status: 0 when clean or when clang-tidy is unavailable (the tool is
# gated, not vendored — CI installs it; see docs/hardening.md), 1 on any
# diagnostic (WarningsAsErrors: '*').
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${WSNQ_TIDY_BUILD_DIR:-${ROOT}/build}"
TIDY_BIN="${CLANG_TIDY:-clang-tidy}"

if ! command -v "${TIDY_BIN}" >/dev/null 2>&1; then
  echo "run_clang_tidy: ${TIDY_BIN} not found; skipping (install clang-tidy to enable the gate)" >&2
  exit 0
fi

cd "${ROOT}"

if [ ! -f "${BUILD_DIR}/compile_commands.json" ]; then
  echo "run_clang_tidy: configuring ${BUILD_DIR} for compile_commands.json" >&2
  cmake -B "${BUILD_DIR}" -S "${ROOT}" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
fi

targets=("$@")
if [ "${#targets[@]}" -eq 0 ]; then
  targets=(src tests tools bench examples)
fi

mapfile -t files < <(find "${targets[@]}" \( -name '*.cc' -o -name '*.cpp' \) | sort)
if [ "${#files[@]}" -eq 0 ]; then
  echo "run_clang_tidy: no C++ sources under: ${targets[*]}" >&2
  exit 0
fi

echo "run_clang_tidy: ${#files[@]} files, $(nproc) jobs" >&2
printf '%s\0' "${files[@]}" |
  xargs -0 -n 4 -P "$(nproc)" "${TIDY_BIN}" -p "${BUILD_DIR}" --quiet
echo "run_clang_tidy: clean" >&2
