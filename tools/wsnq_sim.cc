// wsnq_sim: command-line driver for the continuous quantile simulator.
//
// Examples:
//   wsnq_sim --algo=IQ --nodes=256 --rounds=250 --runs=5
//   wsnq_sim --algo=HBC,IQ,POS --dataset=pressure --skip=7 --pessimistic
//   wsnq_sim --algo=IQ --trail --rounds=50       # per-round trace
//   wsnq_sim --list                              # available algorithms
//
// Flags (defaults follow the paper's §5.1 setup):
//   --algo=NAME[,NAME...]   algorithms (TAG POS HBC HBC-NTB IQ LCLL-H
//                           LCLL-S SNAPSHOT SWITCH QDIGEST GK SAMPLE)
//   --threads=N             worker threads for multi-run experiments
//                           (0 = auto, 1 = serial; results bit-identical)
//   --subtree-parallel      split each convergecast wave over subtree cuts
//                           of the routing tree (net/wave.h), using threads
//                           left idle by the run-level fan-out; every
//                           output stays bit-identical
//   --dataset=synthetic|pressure
//   --nodes=N --radio=M --phi=F --rounds=R --runs=K --seed=S
//   --values_per_node=M     multi-value nodes (§2; synthetic only)
//   --period=P --noise=PSI  (synthetic)
//   --skip=S --pessimistic  (pressure)
//   --tree=nearest|balanced|random   routing-tree parent selection
//   --loss=P                uplink frame loss probability (0..1)
//   --loss-model=iid|ge     loss process: i.i.d. Bernoulli or bursty
//                           Gilbert-Elliott (stationary loss rate stays P)
//   --burst-len=B           mean burst length in frames (ge only, > 1)
//   --crash-nodes=N         non-root nodes crashed for a window of rounds
//   --crash-round=R         first round of the crash window (default 5)
//   --crash-len=L           window length in rounds (0 = never recover)
//   --no-repair             leave orphaned subtrees detached while crashed
//   --arq                   stop-and-wait ARQ on every uplink unicast
//   --max-retx=N            retransmission budget per message (default 16)
//   --trail                 print per-round records (single run)
//   --csv                   machine-readable output
//   --trace=PATH            structured event trace (.jsonl = JSONL, else
//                           Chrome/Perfetto JSON; needs -DWSNQ_TRACING=ON)
//   --metrics=PATH          long-format metrics CSV (docs/observability.md)
//   --profile[=PATH]        wall-clock stage profile to stderr (and JSON
//                           when a PATH is given)

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "algo/registry.h"
#include "core/config.h"
#include "core/experiment.h"
#include "core/report.h"
#include "core/scenario.h"
#include "core/simulation.h"
#include "fault/fault_cli.h"
#include "perf/stage_collector.h"
#include "util/flags.h"
#include "util/mutex.h"
#include "util/trace.h"

namespace {

using namespace wsnq;

std::vector<std::string> SplitCommas(const std::string& raw) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= raw.size()) {
    const size_t comma = raw.find(',', start);
    if (comma == std::string::npos) {
      out.push_back(raw.substr(start));
      break;
    }
    out.push_back(raw.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

int ListAlgorithms() {
  std::printf("exact:         TAG POS HBC HBC-NTB IQ LCLL-H LCLL-S SNAPSHOT "
              "SWITCH\n");
  std::printf("approximate:   QDIGEST GK\n");
  std::printf("probabilistic: SAMPLE\n");
  return 0;
}

/// Writes the trace file (if --trace installed a sink) and the profile
/// report; returns `code`, downgraded to 1 when the trace write failed.
int Finish(int code, const std::string& profile_path) {
  const Status trace_status = trace::FlushGlobalSink();
  if (!trace_status.ok()) {
    std::fprintf(stderr, "trace write failed: %s\n",
                 trace_status.ToString().c_str());
    if (code == 0) code = 1;
  }
  prof::ReportToStderr();
  if (!profile_path.empty() && profile_path != "true") {
    const Status profile_status = prof::WriteJson(profile_path);
    if (!profile_status.ok()) {
      std::fprintf(stderr, "profile write failed: %s\n",
                   profile_status.ToString().c_str());
      if (code == 0) code = 1;
    }
  }
  return code;
}

/// Writes the long-format metrics CSV for the aggregates of one
/// invocation.
int WriteMetricsCsv(const std::string& path,
                    const std::vector<AlgorithmAggregate>& aggregates,
                    const std::string& dataset, const std::string& x_name,
                    const std::string& x_value) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open --metrics=%s\n", path.c_str());
    return 1;
  }
  PrintMetricsCsvHeader(out);
  for (const AlgorithmAggregate& agg : aggregates) {
    PrintMetricsCsvRows(out, "sim", dataset, x_name, x_value, agg);
  }
  std::fclose(out);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  if (flags.Has("list")) return ListAlgorithms();
  if (flags.Has("help")) {
    std::printf("see the header comment of tools/wsnq_sim.cc or README.md\n");
    return 0;
  }

  SimulationConfig config;
  config.num_sensors = static_cast<int>(flags.GetInt("nodes", 256));
  config.values_per_node =
      static_cast<int>(flags.GetInt("values_per_node", 1));
  config.radio_range = flags.GetDouble("radio", 35.0);
  config.phi = flags.GetDouble("phi", 0.5);
  config.rounds = static_cast<int>(flags.GetInt("rounds", 250));
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  config.fault.loss = flags.GetDouble("loss", 0.0);
  const std::string loss_model = flags.GetString("loss-model", "iid");
  if (loss_model == "ge") {
    config.fault.loss_model = LossModel::kGilbertElliott;
  } else if (loss_model != "iid") {
    std::fprintf(stderr, "unknown --loss-model=%s (iid|ge)\n",
                 loss_model.c_str());
    return 2;
  }
  config.fault.burst_len = flags.GetDouble("burst-len", 4.0);
  config.fault.crash_nodes =
      static_cast<int>(flags.GetInt("crash-nodes", 0));
  config.fault.crash_round = flags.GetInt("crash-round", 5);
  config.fault.crash_len = flags.GetInt("crash-len", 0);
  config.fault.repair = !flags.GetBool("no-repair", false);
  config.fault.arq.enabled = flags.GetBool("arq", false);
  config.fault.arq.max_retx = static_cast<int>(flags.GetInt("max-retx", 16));
  FaultFlagPresence fault_present;
  fault_present.loss = flags.Has("loss");
  fault_present.loss_model = flags.Has("loss-model");
  fault_present.burst_len = flags.Has("burst-len");
  fault_present.crash_nodes = flags.Has("crash-nodes");
  fault_present.crash_round = flags.Has("crash-round");
  fault_present.crash_len = flags.Has("crash-len");
  fault_present.no_repair = flags.Has("no-repair");
  fault_present.arq = flags.Has("arq");
  fault_present.max_retx = flags.Has("max-retx");
  const Status fault_status = ValidateFaultFlags(config.fault, fault_present);
  if (!fault_status.ok()) {
    std::fprintf(stderr, "%s\n", fault_status.ToString().c_str());
    return 2;
  }
  config.synthetic.period_rounds = flags.GetDouble("period", 125.0);
  config.synthetic.noise_percent = flags.GetDouble("noise", 5.0);
  config.pressure.skip = static_cast<int>(flags.GetInt("skip", 0));
  if (flags.GetBool("pessimistic", false)) {
    config.pressure.range_setting =
        PressureTrace::RangeSetting::kPessimistic;
  }
  const std::string tree = flags.GetString("tree", "nearest");
  if (tree == "balanced") {
    config.tree_strategy = ParentSelection::kDegreeBalanced;
  } else if (tree == "random") {
    config.tree_strategy = ParentSelection::kRandom;
  } else if (tree != "nearest") {
    std::fprintf(stderr, "unknown --tree=%s (nearest|balanced|random)\n",
                 tree.c_str());
    return 2;
  }
  const std::string dataset = flags.GetString("dataset", "synthetic");
  if (dataset == "pressure") {
    config.dataset = DatasetKind::kPressure;
    config.pressure.num_stations =
        static_cast<int>(flags.GetInt("nodes", 1022));
  } else if (dataset != "synthetic") {
    std::fprintf(stderr, "unknown --dataset=%s\n", dataset.c_str());
    return 2;
  }

  const int runs = static_cast<int>(flags.GetInt("runs", 5));
  config.threads = static_cast<int>(flags.GetInt("threads", 0));
  config.subtree_parallel =
      flags.GetBool("subtree-parallel", config.subtree_parallel);
  const bool trail = flags.GetBool("trail", false);
  const bool csv = flags.GetBool("csv", false);
  const std::string algo_list = flags.GetString("algo", "IQ");
  const std::string trace_path = flags.GetString("trace", "");
  const std::string metrics_path = flags.GetString("metrics", "");
  const std::string profile_path = flags.GetString("profile", "");
  config.collect_metrics = !metrics_path.empty();

  for (const std::string& err : flags.errors()) {
    std::fprintf(stderr, "%s\n", err.c_str());
    return 2;
  }
  for (const std::string& unused : flags.UnusedFlags()) {
    std::fprintf(stderr, "unknown flag --%s (try --help)\n", unused.c_str());
    return 2;
  }

  std::vector<AlgorithmKind> kinds;
  for (const std::string& name : SplitCommas(algo_list)) {
    auto kind = ParseAlgorithmName(name.c_str());
    if (!kind.ok()) {
      std::fprintf(stderr, "%s (use --list)\n",
                   kind.status().ToString().c_str());
      return 2;
    }
    kinds.push_back(kind.value());
  }

  if (!profile_path.empty()) {
    prof::Enable();
    // Attach hardware-counter / allocation accounting to the prof:: spans
    // (src/perf/stage_collector.h); the status line reports whether this
    // host grants perf_event_open. Stderr only — stdout stays
    // deterministic.
    std::fprintf(stderr, "%s\n", perf::InstallStageCollector().c_str());
  }
  if (!trace_path.empty()) {
    if (!trace::CompiledIn()) {
      std::fprintf(stderr,
                   "warning: this build has WSNQ_TRACING off; --trace will "
                   "write an empty trace (reconfigure with "
                   "-DWSNQ_TRACING=ON)\n");
    }
    trace::InstallGlobalSink(trace_path);
  }

  if (trail) {
    // Single-run per-round trace of the first algorithm.
    auto scenario = BuildScenario(config, 0);
    if (!scenario.ok()) {
      std::fprintf(stderr, "%s\n", scenario.status().ToString().c_str());
      return 1;
    }
    auto protocol = MakeProtocol(kinds[0], scenario.value().k,
                                 scenario.value().source->range_min(),
                                 scenario.value().source->range_max(),
                                 config.wire);
    // The trail path is a single hand-rolled run, so it owns run 0's trace
    // buffer directly instead of going through RunExperiment.
    trace::TraceBuffer trace_buffer(0);
    SimulationResult result;
    {
      trace::RunScope trace_scope(
          trace::GlobalSink() != nullptr ? &trace_buffer : nullptr);
      result = RunSimulation(scenario.value(), protocol.get(), config.rounds,
                             /*check_oracle=*/true, /*keep_trail=*/true,
                             config.collect_metrics);
    }
    if (trace::GlobalSink() != nullptr) {
      // Single hand-rolled run on this thread; the fold phase holds.
      ScopedSerialPhase fold_phase(FoldPhase());
      trace::GlobalSink()->Fold(trace_buffer);
    }
    if (!metrics_path.empty()) {
      AlgorithmAggregate aggregate;
      aggregate.label = AlgorithmName(kinds[0]);
      aggregate.metrics = result.metrics;
      if (WriteMetricsCsv(metrics_path, {aggregate}, dataset, "trail",
                          "0") != 0) {
        return Finish(1, profile_path);
      }
    }
    std::printf(csv ? "round,quantile,hotspot_mj,packets,values,refinements,"
                      "rank_error\n"
                    : "%-6s %-10s %-12s %-8s %-8s %-12s %s\n",
                "round", "quantile", "hotspot_mJ", "packets", "values",
                "refinements", "rank_err");
    for (const RoundRecord& r : result.trail) {
      std::printf(csv ? "%lld,%lld,%.6f,%lld,%lld,%lld,%lld\n"
                      : "%-6lld %-10lld %-12.6f %-8lld %-8lld %-12lld %lld\n",
                  static_cast<long long>(r.round),
                  static_cast<long long>(r.quantile), r.max_round_energy_mj,
                  static_cast<long long>(r.packets),
                  static_cast<long long>(r.values),
                  static_cast<long long>(r.refinements),
                  static_cast<long long>(r.rank_error));
    }
    return Finish(0, profile_path);
  }

  auto aggregates = RunExperiment(config, kinds, runs);
  if (!aggregates.ok()) {
    std::fprintf(stderr, "%s\n", aggregates.status().ToString().c_str());
    return Finish(1, profile_path);
  }
  if (!metrics_path.empty()) {
    if (WriteMetricsCsv(metrics_path, aggregates.value(), dataset, "runs",
                        std::to_string(runs)) != 0) {
      return Finish(1, profile_path);
    }
  }
  std::printf(csv ? "algo,max_energy_mj,lifetime_rounds,packets,values,"
                    "refinements,mean_rank_error,errors\n"
                  : "%-9s %14s %16s %10s %10s %12s %10s %7s\n",
              "algo", "max_energy_mJ", "lifetime_rounds", "packets",
              "values", "refinements", "rank_err", "errors");
  for (const AlgorithmAggregate& agg : aggregates.value()) {
    std::printf(csv ? "%s,%.6f,%.1f,%.1f,%.1f,%.2f,%.3f,%lld\n"
                    : "%-9s %14.6f %16.1f %10.1f %10.1f %12.2f %10.3f "
                      "%7lld\n",
                agg.label.c_str(), agg.max_round_energy_mj.mean(),
                agg.lifetime_rounds.mean(), agg.packets.mean(),
                agg.values.mean(), agg.refinements.mean(),
                agg.rank_error.mean(), static_cast<long long>(agg.errors));
  }
  return Finish(0, profile_path);
}
