#!/usr/bin/env python3
"""wsnq-analyzer: AST-grade determinism & layering analysis.

The deep tier of the repo's static analysis (wsnq_lint.py is the fast
regex tier; docs/hardening.md "Static analysis"). Where the lint greps for
spellings, the analyzer resolves what a name *means* — `using clk =
std::chrono::steady_clock; clk::now()` is caught even though no banned
spelling appears — and reasons about iteration order and include layering.

Rules
  ban-clock        No raw clock reads (steady/system/high_resolution
                   _clock::now, clock_gettime, gettimeofday, timespec_get)
                   outside src/util/trace.cc, src/util/thread_pool.cc and
                   bench/. Resolves typedef/using/namespace aliases, so
                   aliased clocks can't slip through.
  ban-seq-rng      No sequential RNG (rand/srand/drand48/lrand48,
                   std::random_device, std::mt19937 and friends) outside
                   src/util/rng.*; simulations must be bit-reproducible
                   from counter-keyed draws (util/rng.h).
  ban-raw-thread   No std::thread/std::jthread/std::async/pthread_create
                   outside src/util/thread_pool.*; ad-hoc threads bypass
                   the deterministic fan-out/ordered-fold discipline.
                   (std::thread::id and std::this_thread are fine.)
  ban-perf-syscall No perf_event_open / raw syscall() / perf_event_attr
                   outside src/perf/ — the sole sanctioned home of
                   hardware-counter plumbing (perf/counters.h), so the
                   EPERM fallback and per-stage attribution stay uniform.
  unordered-iter   No iteration over std::unordered_map/unordered_set in
                   fold/aggregate/report/export/serialize paths — the
                   iteration order is implementation-defined, so anything
                   it feeds that reaches output breaks the bit-identical
                   contract. The partial-wave fold path counts as output:
                   wave/replay/convergecast contexts (net/wave.h) replay
                   sends and debit energy straight into the Network, so
                   hash order there changes accounting bytes. Lookups
                   (find/count/emplace) are fine.
  fp-reduction     No floating-point accumulation (`+=` on a double/float)
                   inside a loop over an unordered container: FP addition
                   is not associative, so the sum depends on hash order —
                   in a partial-wave fold that also means the sum depends
                   on the subtree partition.
  layering         First-party includes must respect the layer DAG
                   util <- net <- {data,fault} <- {algo,sketch} <- core
                   <- {tests,tools,bench,examples}; perf sits beside the
                   stack on util only (nothing under src/ may include
                   perf/ back — measurement must observe, never shape,
                   the simulation). A core -> bench or net -> core
                   include is an error.
  bad-suppression  A `wsnq-analyzer: allow(...)` comment naming an unknown
                   rule or carrying no justification.

Suppression
  // wsnq-analyzer: allow(<rule>): <justification>
  silences <rule> on that line only. The justification is mandatory and
  must be non-empty — an unjustified or unknown-rule suppression is itself
  a finding (bad-suppression) and does NOT silence anything.

Engines
  libclang   compile_commands.json-driven AST walk (python3-clang; CI's
             analyze job). Callee resolution comes from the real compiler
             front end.
  fallback   built-in, dependency-free lexical-semantic engine: comment/
             string-stripped tokens, typedef/using/namespace-alias
             resolution, declared-type tracking for containers and FP
             accumulators, brace-depth function contexts. What this repo's
             ctest leg pins (tests/analyzer corpus).
  --engine=auto (default) picks libclang when importable and falls back —
  with a warning — when it is not, or when the libclang pass throws.
  layering and bad-suppression are line-based and run identically in both.

Usage: wsnq_analyzer.py [--root DIR] [--compdb DIR] [--engine E]
                        [--selftest DIR] [--list-rules]
Exit status: 0 clean, 1 findings (or selftest mismatch), 2 usage error.
"""

import argparse
import os
import re
import sys
from typing import Dict, List, NamedTuple, Optional, Set, Tuple

RULES = {
    "ban-clock": "raw clock read outside the sanctioned timing sites",
    "ban-seq-rng": "sequential RNG outside util/rng",
    "ban-raw-thread": "raw thread/async outside util/thread_pool",
    "ban-perf-syscall": "perf_event_open / raw syscall outside src/perf",
    "unordered-iter": "unordered-container iteration in an output path",
    "fp-reduction": "order-sensitive FP reduction over unordered iteration",
    "layering": "include edge violates the layer DAG",
    "bad-suppression": "malformed wsnq-analyzer suppression comment",
}

CXX_ROOTS = ("src", "tests", "tools", "bench", "examples")
CXX_EXTENSIONS = (".cc", ".h", ".cpp", ".hpp")
# Expected-diagnostic corpora — scanned only via --selftest, never in tree
# mode (they violate the rules on purpose).
CORPUS_DIRS = (os.path.join("tests", "analyzer"), os.path.join("tests", "lint"))

# --- Rule data ------------------------------------------------------------

# Per-rule sanctioned locations (repo-relative path or dir/ prefix).
SANCTIONED = {
    "ban-clock": ("src/util/trace.cc", "src/util/thread_pool.cc", "bench/"),
    "ban-seq-rng": ("src/util/rng.h", "src/util/rng.cc"),
    "ban-raw-thread": ("src/util/thread_pool.h", "src/util/thread_pool.cc"),
    "ban-perf-syscall": ("src/perf/",),
}

# Banned callees/types as ::-segment tuples, matched segment-for-segment
# against the alias-resolved name (so std::thread::id does NOT match
# std::thread). Call bans only fire when the name is immediately invoked —
# a field *named* rand is not a call of ::rand(). Type bans fire on any
# reference. `suffix` matches trailing segments (catches
# chrono::steady_clock::now under any qualification).
BAN_CALL_EXACT = {
    "ban-clock": {
        ("clock_gettime",), ("gettimeofday",), ("timespec_get",),
        ("std", "timespec_get"),
    },
    "ban-seq-rng": {
        ("rand",), ("srand",), ("drand48",), ("lrand48",),
        ("std", "rand"), ("std", "srand"),
    },
    "ban-raw-thread": {
        ("pthread_create",), ("std", "async"),
    },
    # `syscall` itself is banned: the only legitimate raw syscall in this
    # tree is perf_event_open's (no glibc wrapper exists), and that lives
    # in src/perf/counters.cc.
    "ban-perf-syscall": {
        ("perf_event_open",), ("syscall",),
    },
}
BAN_TYPE_EXACT = {
    "ban-clock": set(),
    "ban-seq-rng": set(),
    "ban-raw-thread": {("std", "thread"), ("std", "jthread")},
    "ban-perf-syscall": {("perf_event_attr",)},
}
BAN_SUFFIX = {
    "ban-clock": {
        ("steady_clock", "now"), ("system_clock", "now"),
        ("high_resolution_clock", "now"),
    },
    "ban-seq-rng": {
        ("random_device",), ("mt19937",), ("mt19937_64",),
        ("minstd_rand",), ("minstd_rand0",), ("default_random_engine",),
        ("ranlux24",), ("ranlux48",), ("knuth_b",),
    },
    "ban-raw-thread": set(),
    "ban-perf-syscall": set(),
}
BAN_MESSAGES = {
    "ban-clock": "raw clock read; time through prof::WallSeconds / "
                 "prof::ScopedTimer (util/trace.h) so wall-clock "
                 "non-determinism stays out of simulation code",
    "ban-seq-rng": "sequential RNG; use the counter-keyed wsnq::Rng "
                   "(util/rng.h) so results are bit-reproducible from the "
                   "seed",
    "ban-raw-thread": "raw thread primitive; use wsnq::ThreadPool "
                      "(util/thread_pool.h) — ad-hoc threads bypass the "
                      "deterministic fan-out/ordered-fold discipline",
    "ban-perf-syscall": "hardware-counter plumbing outside src/perf/; go "
                        "through perf::CounterSet (perf/counters.h) so the "
                        "EPERM fallback and per-stage attribution stay "
                        "uniform",
}

# Layer DAG: which first-party include layers each source layer may use.
SRC_LAYERS = ("util", "perf", "net", "data", "fault", "sketch", "algo",
              "core", "mc", "serve")
LAYER_ALLOWED: Dict[str, Set[str]] = {
    "util": {"util"},
    # The measurement layer sits beside the stack: it observes through the
    # prof::StageObserver seam in util/trace.h, and nothing under src/
    # may include perf/ back (simulation results must not depend on how
    # they are measured). bench/tests/tools reach it via the top-level
    # rule below.
    "perf": {"perf", "util"},
    "net": {"net", "util"},
    "data": {"data", "net", "util"},
    "fault": {"fault", "net", "util"},
    # algo and sketch are one layer group (q-digest is both an algorithm
    # and a sketch): mutual includes are legal.
    "sketch": {"sketch", "algo", "net", "util"},
    "algo": {"algo", "sketch", "net", "util"},
    "core": {"core", "algo", "sketch", "data", "fault", "net", "util"},
    # The model checker sits on top of everything it checks; nothing under
    # src/ may include mc/ back (the checker must observe, never shape, the
    # production stack).
    "mc": {"mc", "core", "algo", "sketch", "data", "fault", "net", "util"},
    # The serving daemon also sits on top of the stack: it drives the
    # simulator through core/scenario + algo/multi_quantile, and nothing
    # under src/ may include serve/ back (the simulation must stay
    # transport-free; sockets are a serve-only concern, see the
    # serve-syscall lint rule).
    "serve": {"serve", "core", "algo", "sketch", "data", "fault", "net",
              "util", "perf"},
}
for _top in ("tests", "tools", "bench", "examples"):
    LAYER_ALLOWED[_top] = set(SRC_LAYERS) | {_top}

# Function-name contexts where unordered iteration order can reach output
# (fold/aggregate/report/export/serialize paths, plus the partial-wave
# fold path of net/wave.h: part replays and fold-vertex processing feed
# Network accounting directly, so wave/replay/convergecast contexts are
# output paths too).
OUTPUT_CONTEXT_RE = re.compile(
    r"(?i)(fold|merge|aggregat|report|export|serial|write|rows|print|csv|"
    r"json|dump|emit|render|encode|wave|replay|convergecast)")

SUPPRESS_RE = re.compile(
    r"//\s*wsnq-analyzer:\s*allow\(([^)]*)\)(?:\s*:\s*(\S.*))?")
EXPECT_DIAG_RE = re.compile(r"//\s*expect-diag:\s*([a-z\-,\s]+)")


class Finding(NamedTuple):
    path: str  # root-relative
    line: int  # 1-based
    rule: str
    message: str


def sanctioned(rule: str, rel: str) -> bool:
    rel_posix = rel.replace(os.sep, "/")
    for entry in SANCTIONED.get(rule, ()):
        if entry.endswith("/"):
            if rel_posix.startswith(entry):
                return True
        elif rel_posix == entry:
            return True
    return False


def iter_tree_files(root: str):
    for top in CXX_ROOTS:
        top_abs = os.path.join(root, top)
        if not os.path.isdir(top_abs):
            continue
        for dirpath, dirnames, filenames in os.walk(top_abs):
            dirnames[:] = [d for d in dirnames if not d.startswith(".")]
            rel_dir = os.path.relpath(dirpath, root)
            if any(rel_dir == c or rel_dir.startswith(c + os.sep)
                   for c in CORPUS_DIRS):
                continue
            for name in sorted(filenames):
                if name.endswith(CXX_EXTENSIONS):
                    yield os.path.relpath(os.path.join(dirpath, name), root)


def iter_corpus_files(corpus_root: str):
    for dirpath, dirnames, filenames in os.walk(corpus_root):
        dirnames[:] = [d for d in dirnames if not d.startswith(".")]
        for name in sorted(filenames):
            if name.endswith(CXX_EXTENSIONS):
                yield os.path.relpath(os.path.join(dirpath, name),
                                      corpus_root)


# --- Shared lexical helpers ----------------------------------------------

def strip_line(line: str) -> str:
    """Removes string/char literals and // comments from one line."""
    line = re.sub(r'"(\\.|[^"\\])*"', '""', line)
    line = re.sub(r"'(\\.|[^'\\])*'", "''", line)
    return line.split("//", 1)[0]


def strip_file(lines: List[str]) -> List[str]:
    """Per-line stripped source with /* */ block comments blanked too
    (line structure preserved)."""
    stripped = []
    in_block = False
    for raw in lines:
        if in_block:
            end = raw.find("*/")
            if end < 0:
                stripped.append("")
                continue
            raw = " " * (end + 2) + raw[end + 2:]
            in_block = False
        line = strip_line(raw)
        while True:
            start = line.find("/*")
            if start < 0:
                break
            end = line.find("*/", start + 2)
            if end < 0:
                line = line[:start]
                in_block = True
                break
            line = line[:start] + " " + line[end + 2:]
        stripped.append(line)
    return stripped


def parse_suppressions(lines: List[str], rel: str
                       ) -> Tuple[Set[Tuple[int, str]], List[Finding]]:
    """Returns ({(line, rule)} valid suppressions, bad-suppression
    findings). Invalid suppressions silence nothing."""
    valid: Set[Tuple[int, str]] = set()
    findings: List[Finding] = []
    for i, raw in enumerate(lines, start=1):
        m = SUPPRESS_RE.search(raw)
        if not m:
            continue
        rule = m.group(1).strip()
        justification = (m.group(2) or "").strip()
        if rule not in RULES:
            findings.append(Finding(
                rel, i, "bad-suppression",
                f"suppression names unknown rule '{rule}' "
                f"(known: {', '.join(sorted(RULES))})"))
        elif not justification:
            findings.append(Finding(
                rel, i, "bad-suppression",
                "suppression carries no justification; write "
                "`// wsnq-analyzer: allow(<rule>): <why this is sound>`"))
        else:
            valid.add((i, rule))
    return valid, findings


INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"')


def check_layering(rel: str, lines: List[str]) -> List[Finding]:
    parts = rel.split(os.sep)
    src_layer = parts[1] if parts[0] == "src" and len(parts) > 1 else parts[0]
    allowed = LAYER_ALLOWED.get(src_layer)
    if allowed is None:
        return []  # not a layered location (e.g. a stray top-level file)
    findings = []
    for i, raw in enumerate(lines, start=1):
        m = INCLUDE_RE.match(raw)
        if not m:
            continue
        target_layer = m.group(1).split("/", 1)[0]
        if target_layer not in LAYER_ALLOWED:
            continue  # not first-party (gtest/..., etc.)
        if target_layer not in allowed:
            findings.append(Finding(
                rel, i, "layering",
                f"illegal include edge {src_layer} -> {target_layer}; the "
                f"layer DAG allows {src_layer} -> "
                f"{{{', '.join(sorted(allowed))}}}"))
    return findings


# --- Fallback engine ------------------------------------------------------

ALIAS_USING_RE = re.compile(
    r"\busing\s+([A-Za-z_]\w*)\s*=\s*([\w:]+(?:<[^;=]*>)?)\s*;")
ALIAS_TYPEDEF_RE = re.compile(
    r"\btypedef\s+([\w:<>,\s*&]+?)\s+([A-Za-z_]\w*)\s*;")
ALIAS_NAMESPACE_RE = re.compile(
    r"\bnamespace\s+([A-Za-z_]\w*)\s*=\s*([\w:]+)\s*;")
USING_DECL_RE = re.compile(r"\busing\s+((?:[\w]+::)+[\w]+)\s*;")
USING_NAMESPACE_RE = re.compile(r"\busing\s+namespace\s+([\w:]+)\s*;")
QUALIFIED_NAME_RE = re.compile(
    r"(?:::\s*)?[A-Za-z_]\w*(?:\s*::\s*[A-Za-z_]\w*)*")
FP_DECL_RE = re.compile(r"\b(?:double|float)\b\s*[&*]?\s*([A-Za-z_]\w*)")
RANGE_FOR_RE = re.compile(r"\bfor\s*\(([^;()]*?):([^;]*)\)")
FUNC_SIG_RE = re.compile(
    r"([A-Za-z_~]\w*)\s*\([^()]*(?:\([^()]*\)[^()]*)*\)\s*"
    r"(?:const|noexcept|final|override|->\s*[\w:<>,\s]+|WSNQ_\w+\s*\([^()]*\))*\s*$")
NON_FUNC_KEYWORDS = {"if", "for", "while", "switch", "catch", "return",
                     "sizeof", "alignof", "decltype"}


class FileModel:
    """Lexical-semantic model of one file: aliases, declared types,
    function contexts."""

    def __init__(self, rel: str, stripped: List[str],
                 extra_decl_text: str = ""):
        self.rel = rel
        self.lines = stripped
        # extra_decl_text: the sibling header's stripped source, so member
        # declarations (aliases, unordered containers, FP fields) are
        # visible when analyzing the .cc that iterates them. Declarations
        # only — the header's own lines are scanned as their own file.
        self.text = "\n".join(stripped) + "\n" + extra_decl_text
        self.aliases: Dict[str, str] = {}
        self.using_namespaces: List[str] = ["std"]  # optimistic: catches
        # unqualified steady_clock::now even without the using-directive,
        # and no first-party name collides with the banned ones.
        self.unordered_vars: Set[str] = set()
        self.fp_vars: Set[str] = set(FP_DECL_RE.findall(self.text))
        self._collect_aliases()
        self._collect_unordered_decls()

    def _collect_aliases(self):
        for name, target in ALIAS_USING_RE.findall(self.text):
            self.aliases[name] = re.sub(r"\s+", "", target)
        for target, name in ALIAS_TYPEDEF_RE.findall(self.text):
            self.aliases[name] = re.sub(r"\s+", "", target.strip())
        for name, target in ALIAS_NAMESPACE_RE.findall(self.text):
            self.aliases[name] = re.sub(r"\s+", "", target)
        for qualified in USING_DECL_RE.findall(self.text):
            self.aliases[qualified.rsplit("::", 1)[1]] = qualified
        for ns in USING_NAMESPACE_RE.findall(self.text):
            self.using_namespaces.append(ns)

    def resolve(self, token: str) -> str:
        """Expands the leading segment through the alias map (bounded)."""
        name = re.sub(r"\s+", "", token).lstrip(":")
        for _ in range(8):
            head, sep, tail = name.partition("::")
            expansion = self.aliases.get(head)
            if expansion is None or expansion == name:
                break
            name = expansion + (sep + tail if sep else "")
            if "<" in name:  # template alias: keep the template head only
                name = name.split("<", 1)[0]
        return name

    def _template_decl_names(self, marker: str) -> Set[str]:
        """Identifiers declared with a type whose spelling contains
        `marker<...>` (balanced angle brackets, nested templates OK)."""
        names = set()
        text = self.text
        pos = 0
        while True:
            start = text.find(marker + "<", pos)
            if start < 0:
                break
            i = start + len(marker)
            depth = 0
            while i < len(text):
                if text[i] == "<":
                    depth += 1
                elif text[i] == ">":
                    depth -= 1
                    if depth == 0:
                        break
                i += 1
            m = re.match(r"\s*[&*]?\s*([A-Za-z_]\w*)\s*[;={(,)]",
                         text[i + 1:i + 120])
            if m:
                names.add(m.group(1))
            pos = i + 1
        return names

    def _collect_unordered_decls(self):
        for marker in ("unordered_map", "unordered_set"):
            self.unordered_vars |= self._template_decl_names(marker)
        # Alias-typed declarations: `using NodeMap = std::unordered_map<..>;
        # NodeMap index_;`
        for name, target in self.aliases.items():
            if "unordered_map" in target or "unordered_set" in target:
                for m in re.finditer(
                        r"\b%s\b\s*[&*]?\s+([A-Za-z_]\w*)\s*[;={(]"
                        % re.escape(name), self.text):
                    self.unordered_vars.add(m.group(1))

    def function_contexts(self) -> List[Optional[str]]:
        """Per-line innermost *named* function context (None outside)."""
        contexts: List[Optional[str]] = []
        stack: List[Tuple[Optional[str], int]] = []  # (name, depth-after-{)
        depth = 0
        statement = ""  # text since the last ; { }
        for line in self.lines:
            for ch in line:
                if ch == "{":
                    name = None
                    sig = FUNC_SIG_RE.search(statement.strip())
                    if sig and sig.group(1) not in NON_FUNC_KEYWORDS:
                        name = sig.group(1)
                    depth += 1
                    stack.append((name, depth))
                    statement = ""
                elif ch == "}":
                    depth -= 1
                    while stack and stack[-1][1] > depth:
                        stack.pop()
                    statement = ""
                elif ch == ";":
                    statement = ""
                else:
                    statement += ch
            statement += " "
            named = next((n for n, _ in reversed(stack) if n), None)
            contexts.append(named)
        return contexts


def fallback_ban_findings(model: FileModel) -> List[Finding]:
    findings = []
    seen: Set[Tuple[int, str]] = set()
    for i, line in enumerate(model.lines, start=1):
        if line.lstrip().startswith("#"):
            continue  # preprocessor line: <thread> is not a thread spawn
        for m in QUALIFIED_NAME_RE.finditer(line):
            token = m.group(0)
            resolved = model.resolve(token)
            segs = tuple(s for s in resolved.split("::") if s)
            if not segs:
                continue
            is_call = bool(re.match(r"\s*\(", line[m.end():]))
            for rule in ("ban-clock", "ban-seq-rng", "ban-raw-thread",
                         "ban-perf-syscall"):
                if sanctioned(rule, model.rel) or (i, rule) in seen:
                    continue
                candidates = [segs] + [
                    tuple(ns.split("::")) + segs
                    for ns in model.using_namespaces]
                hit = any(
                    (cand in BAN_CALL_EXACT[rule] and is_call) or
                    cand in BAN_TYPE_EXACT[rule]
                    for cand in candidates)
                if not hit:
                    for suffix in BAN_SUFFIX[rule]:
                        if len(segs) >= len(suffix) and \
                                segs[-len(suffix):] == suffix:
                            hit = True
                if hit:
                    seen.add((i, rule))
                    findings.append(Finding(model.rel, i, rule,
                                            BAN_MESSAGES[rule]))
    return findings


def base_identifier(expr: str) -> Optional[str]:
    """Trailing identifier of a range expression (`this->totals_`,
    `cache.entries_` -> entries_); None when the expr ends in a call."""
    expr = expr.strip()
    if expr.endswith(")"):
        return None
    m = re.search(r"([A-Za-z_]\w*)\s*$", expr)
    return m.group(1) if m else None


def fallback_iteration_findings(model: FileModel) -> List[Finding]:
    if not model.unordered_vars:
        return []
    findings = []
    contexts = model.function_contexts()
    depth = 0
    loop_stack: List[int] = []  # depths of open unordered-range-for bodies
    pending_loop = False
    for i, line in enumerate(model.lines, start=1):
        context = contexts[i - 1]
        in_output_path = context is not None and \
            OUTPUT_CONTEXT_RE.search(context)
        for m in RANGE_FOR_RE.finditer(line):
            base = base_identifier(m.group(2))
            if base in model.unordered_vars:
                pending_loop = True
                if in_output_path:
                    findings.append(Finding(
                        model.rel, i, "unordered-iter",
                        f"iteration over unordered container '{base}' in "
                        f"output path '{context}': hash order is "
                        "implementation-defined; use std::map or sort "
                        "before emitting"))
        for var in model.unordered_vars:
            if re.search(r"\b%s\s*\.\s*c?begin\s*\(" % re.escape(var),
                         line) and in_output_path:
                findings.append(Finding(
                    model.rel, i, "unordered-iter",
                    f"iterator walk over unordered container '{var}' in "
                    f"output path '{context}': hash order is "
                    "implementation-defined; use std::map or sort before "
                    "emitting"))
        in_unordered_loop = bool(loop_stack)
        if in_unordered_loop:
            for m in re.finditer(r"([A-Za-z_]\w*)\s*\+=", line):
                if m.group(1) in model.fp_vars:
                    findings.append(Finding(
                        model.rel, i, "fp-reduction",
                        f"'{m.group(1)} +=' accumulates floating point in "
                        "unordered iteration order; FP addition is not "
                        "associative, so the sum depends on hash order — "
                        "fold from an ordered container instead"))
        for ch in line:
            if ch == "{":
                depth += 1
                if pending_loop:
                    loop_stack.append(depth)
                    pending_loop = False
            elif ch == "}":
                while loop_stack and loop_stack[-1] >= depth:
                    loop_stack.pop()
                depth -= 1
    return findings


def fallback_engine(root: str, rel_files: List[str]) -> List[Finding]:
    findings = []
    for rel in rel_files:
        with open(os.path.join(root, rel), encoding="utf-8") as f:
            raw_lines = f.readlines()
        extra = ""
        if rel.endswith((".cc", ".cpp")):
            stem = os.path.splitext(rel)[0]
            for ext in (".h", ".hpp"):
                header = os.path.join(root, stem + ext)
                if os.path.isfile(header):
                    with open(header, encoding="utf-8") as hf:
                        extra = "\n".join(strip_file(hf.readlines()))
                    break
        model = FileModel(rel, strip_file(raw_lines), extra)
        findings.extend(fallback_ban_findings(model))
        findings.extend(fallback_iteration_findings(model))
    return findings


# --- libclang engine ------------------------------------------------------

LIBCLANG_BAN_QUALIFIED = {}
for _table in (BAN_CALL_EXACT, BAN_TYPE_EXACT):
    for _rule, _sets in _table.items():
        for _segs in _sets:
            LIBCLANG_BAN_QUALIFIED["::".join(_segs)] = _rule
for _rule, _sets in BAN_SUFFIX.items():
    for _segs in _sets:
        # Suffix names are distinctive enough to key on the full std path.
        LIBCLANG_BAN_QUALIFIED["std::" + "::".join(_segs)] = _rule
        LIBCLANG_BAN_QUALIFIED["std::chrono::" + "::".join(_segs)] = _rule


def libclang_engine(root: str, rel_files: List[str],
                    compdb_dir: str) -> List[Finding]:
    import clang.cindex as ci  # noqa: F401 — probed by the caller

    index = ci.Index.create()
    compdb = None
    if os.path.isfile(os.path.join(compdb_dir, "compile_commands.json")):
        compdb = ci.CompilationDatabase.fromDirectory(compdb_dir)

    def compile_args(path: str) -> List[str]:
        default = ["-std=c++17", "-I", os.path.join(root, "src"),
                   "-I", root]
        if compdb is None:
            return default
        cmds = compdb.getCompileCommands(path)
        if not cmds:
            return default
        args = list(cmds[0].arguments)[1:]
        out, skip = [], False
        for a in args:
            if skip:
                skip = False
                continue
            if a in ("-o", "-c"):
                skip = a == "-o"
                continue
            if os.path.basename(a) == os.path.basename(path):
                continue
            out.append(a)
        return out

    def qualified_name(cursor) -> str:
        parts = []
        c = cursor
        while c is not None and c.kind != ci.CursorKind.TRANSLATION_UNIT:
            if c.spelling:
                parts.append(c.spelling)
            c = c.semantic_parent
        return "::".join(reversed(parts))

    def rel_of(location) -> Optional[str]:
        if location.file is None:
            return None
        path = os.path.abspath(location.file.name)
        if not path.startswith(os.path.abspath(root) + os.sep):
            return None
        return os.path.relpath(path, root)

    def enclosing_function(cursor) -> Optional[str]:
        c = cursor.semantic_parent
        while c is not None and c.kind != ci.CursorKind.TRANSLATION_UNIT:
            if c.kind in (ci.CursorKind.FUNCTION_DECL,
                          ci.CursorKind.CXX_METHOD,
                          ci.CursorKind.FUNCTION_TEMPLATE):
                return c.spelling
            c = c.semantic_parent
        return None

    findings: Set[Finding] = set()

    def visit(cursor, function: Optional[str]):
        if cursor.kind in (ci.CursorKind.FUNCTION_DECL,
                           ci.CursorKind.CXX_METHOD,
                           ci.CursorKind.FUNCTION_TEMPLATE):
            function = cursor.spelling or function
        rel = rel_of(cursor.location)
        if rel is not None:
            if cursor.kind in (ci.CursorKind.CALL_EXPR,
                               ci.CursorKind.DECL_REF_EXPR,
                               ci.CursorKind.TYPE_REF):
                ref = cursor.referenced
                if ref is not None:
                    rule = LIBCLANG_BAN_QUALIFIED.get(qualified_name(ref))
                    if rule and not sanctioned(rule, rel):
                        findings.add(Finding(rel, cursor.location.line,
                                             rule, BAN_MESSAGES[rule]))
            if cursor.kind == ci.CursorKind.VAR_DECL:
                type_name = cursor.type.get_canonical().spelling
                for banned, rule in (("std::thread", "ban-raw-thread"),
                                     ("std::jthread", "ban-raw-thread")):
                    if (type_name == banned or
                            type_name.startswith(banned + " ")) and \
                            not sanctioned(rule, rel):
                        findings.add(Finding(rel, cursor.location.line,
                                             rule, BAN_MESSAGES[rule]))
            if cursor.kind == ci.CursorKind.CXX_FOR_RANGE_STMT:
                children = list(cursor.get_children())
                range_expr = children[-2] if len(children) >= 2 else None
                type_name = (range_expr.type.get_canonical().spelling
                             if range_expr is not None else "")
                if "unordered_map" in type_name or \
                        "unordered_set" in type_name:
                    if function and OUTPUT_CONTEXT_RE.search(function):
                        findings.add(Finding(
                            rel, cursor.location.line, "unordered-iter",
                            "iteration over an unordered container in "
                            f"output path '{function}': hash order is "
                            "implementation-defined; use std::map or sort "
                            "before emitting"))
                    for inner in cursor.walk_preorder():
                        if inner.kind == \
                                ci.CursorKind.COMPOUND_ASSIGNMENT_OPERATOR:
                            lhs_type = inner.type.get_canonical().spelling
                            if lhs_type in ("double", "float",
                                            "long double"):
                                inner_rel = rel_of(inner.location)
                                if inner_rel is not None:
                                    findings.add(Finding(
                                        inner_rel, inner.location.line,
                                        "fp-reduction",
                                        "floating-point accumulation in "
                                        "unordered iteration order; FP "
                                        "addition is not associative — "
                                        "fold from an ordered container "
                                        "instead"))
        for child in cursor.get_children():
            visit(child, function)

    wanted = {rel for rel in rel_files}
    for rel in rel_files:
        if not rel.endswith((".cc", ".cpp")):
            continue  # headers are analyzed through their includers
        path = os.path.join(root, rel)
        tu = index.parse(path, args=compile_args(path))
        visit(tu.cursor, None)
    # Keep only findings in the requested file set (headers included).
    return [f for f in findings if f.path in wanted]


# --- Driver ---------------------------------------------------------------

def analyze(root: str, rel_files: List[str], engine: str,
            compdb_dir: str) -> List[Finding]:
    findings: List[Finding] = []
    suppressions: Set[Tuple[str, int, str]] = set()
    for rel in rel_files:
        with open(os.path.join(root, rel), encoding="utf-8") as f:
            raw_lines = f.readlines()
        valid, bad = parse_suppressions(raw_lines, rel)
        findings.extend(bad)
        suppressions |= {(rel, line, rule) for line, rule in valid}
        # Raw lines: stripping would blank the quoted include path.
        findings.extend(check_layering(rel, raw_lines))

    chosen = engine
    if engine == "auto":
        try:
            import clang.cindex  # noqa: F401
            chosen = "libclang"
        except ImportError:
            chosen = "fallback"
    if chosen == "libclang":
        try:
            findings.extend(libclang_engine(root, rel_files, compdb_dir))
        except Exception as error:  # noqa: BLE001 — degrade, don't die
            print(f"wsnq-analyzer: libclang engine failed ({error}); "
                  "falling back to the built-in engine", file=sys.stderr)
            chosen = "fallback"
    if chosen == "fallback":
        findings.extend(fallback_engine(root, rel_files))

    kept = [f for f in findings
            if (f.path, f.line, f.rule) not in suppressions]
    return sorted(set(kept))


def parse_expectations(root: str, rel_files: List[str]
                       ) -> Set[Tuple[str, int, str]]:
    expected = set()
    for rel in rel_files:
        with open(os.path.join(root, rel), encoding="utf-8") as f:
            for i, raw in enumerate(f, start=1):
                m = EXPECT_DIAG_RE.search(raw)
                if not m:
                    continue
                for token in re.split(r"[\s,]+", m.group(1).strip()):
                    if token in RULES:
                        expected.add((rel, i, token))
                    elif token:
                        print(f"{rel}:{i}: expect-diag names unknown rule "
                              f"'{token}'", file=sys.stderr)
    return expected


def run_selftest(corpus: str, engine: str, compdb_dir: str) -> int:
    rel_files = list(iter_corpus_files(corpus))
    if not rel_files:
        print(f"wsnq-analyzer: no corpus files under {corpus}",
              file=sys.stderr)
        return 2
    expected = parse_expectations(corpus, rel_files)
    actual = {(f.path, f.line, f.rule)
              for f in analyze(corpus, rel_files, engine, compdb_dir)}
    missing = sorted(expected - actual)
    unexpected = sorted(actual - expected)
    for path, line, rule in missing:
        print(f"{path}:{line}: MISSING expected diagnostic [{rule}]")
    for path, line, rule in unexpected:
        print(f"{path}:{line}: UNEXPECTED diagnostic [{rule}]")
    total = len(expected)
    if missing or unexpected:
        print(f"wsnq-analyzer selftest: FAIL ({len(missing)} missing, "
              f"{len(unexpected)} unexpected of {total} expected)",
              file=sys.stderr)
        return 1
    print(f"wsnq-analyzer selftest: ok ({total} expected diagnostics, "
          f"{len(rel_files)} files)")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root", default=os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))),
        help="repository root (default: parent of this script)")
    parser.add_argument("--compdb", default=None,
                        help="directory holding compile_commands.json "
                             "(default: <root>/build)")
    parser.add_argument("--engine", default="auto",
                        choices=("auto", "libclang", "fallback"),
                        help="analysis engine (default: auto)")
    parser.add_argument("--selftest", metavar="DIR", default=None,
                        help="run the expected-diagnostic corpus under DIR "
                             "instead of scanning the tree")
    parser.add_argument("--list-rules", action="store_true",
                        help="print rule names and exit")
    args = parser.parse_args()

    if args.list_rules:
        for rule in sorted(RULES):
            print(rule)
        return 0

    compdb_dir = args.compdb or os.path.join(args.root, "build")

    if args.selftest:
        if not os.path.isdir(args.selftest):
            print(f"wsnq-analyzer: no such corpus dir: {args.selftest}",
                  file=sys.stderr)
            return 2
        return run_selftest(args.selftest, args.engine, compdb_dir)

    if not os.path.isdir(os.path.join(args.root, "src")):
        print(f"wsnq-analyzer: {args.root} does not look like the repo "
              "root", file=sys.stderr)
        return 2

    rel_files = list(iter_tree_files(args.root))
    findings = analyze(args.root, rel_files, args.engine, compdb_dir)
    for f in findings:
        print(f"{f.path}:{f.line}: [{f.rule}] {f.message}")
    if findings:
        print(f"wsnq-analyzer: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print(f"wsnq-analyzer: clean ({len(RULES)} rules, "
          f"{len(rel_files)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
